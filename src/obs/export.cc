#include "obs/export.h"

#include <fstream>

namespace sbr::obs {

std::string StageReportJson(const MetricsSnapshot& metrics,
                            const std::vector<StageAggregate>& stages) {
  // Reuse the snapshot's own JSON body for the metrics section.
  std::string metrics_json = metrics.ToJson();  // {"metrics":[...]}
  std::string out = metrics_json.substr(0, metrics_json.size() - 1);
  out += ",\"stages\":[";
  bool first = true;
  for (const StageAggregate& s : stages) {
    if (!first) out += ",";
    first = false;
    const uint64_t total_us = s.total_ns / 1000;
    const uint64_t avg_us = s.count == 0 ? 0 : total_us / s.count;
    out += "{\"name\":\"" + s.name +
           "\",\"count\":" + std::to_string(s.count) +
           ",\"total_us\":" + std::to_string(total_us) +
           ",\"avg_us\":" + std::to_string(avg_us) + "}";
  }
  out += "]}";
  return out;
}

std::string StageReportCsv(const MetricsSnapshot& metrics,
                           const std::vector<StageAggregate>& stages) {
  std::string out = "kind,name,value,aux\n";
  for (const MetricValue& m : metrics.metrics) {
    const char* kind = m.kind == MetricValue::Kind::kCounter    ? "counter"
                       : m.kind == MetricValue::Kind::kGauge    ? "gauge"
                                                                : "histogram";
    out += kind;
    out += ",";
    out += m.name;
    out += "," + std::to_string(m.value) + "," + std::to_string(m.aux) + "\n";
  }
  for (const StageAggregate& s : stages) {
    out += "stage,";
    out += s.name;
    out += "," + std::to_string(s.count) + "," +
           std::to_string(s.total_ns / 1000) + "\n";
  }
  return out;
}

bool WriteStageReport(const std::string& path_prefix) {
  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  const std::vector<SpanEvent> events = TraceCollector::Global().Drain();
  const std::vector<StageAggregate> stages = TraceCollector::Aggregate(events);

  std::ofstream json(path_prefix + ".json", std::ios::trunc);
  if (!json) return false;
  json << StageReportJson(metrics, stages);
  if (!json.flush()) return false;

  std::ofstream csv(path_prefix + ".csv", std::ios::trunc);
  if (!csv) return false;
  csv << StageReportCsv(metrics, stages);
  return static_cast<bool>(csv.flush());
}

}  // namespace sbr::obs
