#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

namespace sbr::obs {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool on) {
#if SBR_OBS
  internal::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<uint64_t> Histogram::Buckets() const {
  std::vector<uint64_t> merged(kNumBuckets, 0);
  for (const auto& s : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      merged[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

void Histogram::Reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

int64_t MetricsSnapshot::ValueOf(std::string_view name) const {
  const MetricValue* m = Find(name);
  return m == nullptr ? 0 : m->value;
}

namespace {

const char* KindName(MetricValue::Kind kind) {
  switch (kind) {
    case MetricValue::Kind::kCounter:
      return "counter";
    case MetricValue::Kind::kGauge:
      return "gauge";
    case MetricValue::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + m.name + "\",\"type\":\"" + KindName(m.kind) +
           "\",\"value\":" + std::to_string(m.value) +
           ",\"aux\":" + std::to_string(m.aux);
    if (m.kind == MetricValue::Kind::kHistogram) {
      out += ",\"buckets\":[";
      for (size_t i = 0; i < m.buckets.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(m.buckets[i]);
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshot::ToCsv() const {
  std::string out = "name,type,value,aux\n";
  for (const MetricValue& m : metrics) {
    out += m.name;
    out += ",";
    out += KindName(m.kind);
    out += ",";
    out += std::to_string(m.value);
    out += ",";
    out += std::to_string(m.aux);
    out += "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.metrics.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  // std::map iteration keeps each section name-sorted; sections are then
  // merged name-sorted so the snapshot layout is deterministic.
  for (const auto& [name, c] : counters_) {
    MetricValue m;
    m.kind = MetricValue::Kind::kCounter;
    m.name = name;
    m.value = static_cast<int64_t>(c->Value());
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, g] : gauges_) {
    MetricValue m;
    m.kind = MetricValue::Kind::kGauge;
    m.name = name;
    m.value = g->Value();
    m.aux = g->Max();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue m;
    m.kind = MetricValue::Kind::kHistogram;
    m.name = name;
    m.value = static_cast<int64_t>(h->Count());
    m.aux = static_cast<int64_t>(h->Sum());
    m.buckets = h->Buckets();
    while (!m.buckets.empty() && m.buckets.back() == 0) {
      m.buckets.pop_back();
    }
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedHistTimer::ScopedHistTimer(const char* histogram_name) {
  if (!Enabled()) return;
  hist_ = &MetricsRegistry::Global().GetHistogram(histogram_name);
  start_ns_ = NowNs();
}

ScopedHistTimer::~ScopedHistTimer() {
  if (hist_ == nullptr) return;
  hist_->Record((NowNs() - start_ns_) / 1000);  // microseconds
}

}  // namespace sbr::obs
