#include "obs/trace.h"

#include <algorithm>
#include <chrono>

namespace sbr::obs {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

TraceCollector::ThreadBuffer* TraceCollector::BufferForThisThread() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(std::move(owned));
  }
  return buffer;
}

std::vector<SpanEvent> TraceCollector::Drain() {
  std::vector<SpanEvent> merged;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    merged.insert(merged.end(), buf->events.begin(), buf->events.end());
    buf->events.clear();
  }
  // Buffers are registered in tid order and each buffer is seq-ordered, so
  // a stable sort by tid alone would do; sort on the pair to be explicit.
  std::sort(merged.begin(), merged.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.tid != b.tid ? a.tid < b.tid : a.seq < b.seq;
            });
  return merged;
}

uint64_t TraceCollector::dropped() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

std::string TraceCollector::ToChromeJson(const std::vector<SpanEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += e.name;
    out += "\",\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + std::to_string(e.start_ns / 1000) +
           ",\"dur\":" + std::to_string(e.duration_ns / 1000) + "}";
  }
  out += "]}";
  return out;
}

std::string TraceCollector::ToCsv(const std::vector<SpanEvent>& events) {
  std::string out = "name,tid,depth,seq,start_us,duration_us\n";
  for (const SpanEvent& e : events) {
    out += e.name;
    out += "," + std::to_string(e.tid) + "," + std::to_string(e.depth) +
           "," + std::to_string(e.seq) + "," +
           std::to_string(e.start_ns / 1000) + "," +
           std::to_string(e.duration_ns / 1000) + "\n";
  }
  return out;
}

std::vector<StageAggregate> TraceCollector::Aggregate(
    const std::vector<SpanEvent>& events) {
  std::vector<StageAggregate> stages;
  for (const SpanEvent& e : events) {
    auto it = std::find_if(
        stages.begin(), stages.end(),
        [&](const StageAggregate& s) { return s.name == e.name; });
    if (it == stages.end()) {
      stages.push_back({e.name, 0, 0});
      it = std::prev(stages.end());
    }
    ++it->count;
    it->total_ns += e.duration_ns;
  }
  std::sort(stages.begin(), stages.end(),
            [](const StageAggregate& a, const StageAggregate& b) {
              return a.name < b.name;
            });
  return stages;
}

void ScopedSpan::Begin(const char* name) {
  name_ = name;
  buffer_ = TraceCollector::Global().BufferForThisThread();
  depth_ = buffer_->depth++;
  start_ns_ = NowNs();
}

void ScopedSpan::End() {
  const uint64_t end_ns = NowNs();
  TraceCollector::ThreadBuffer* buf = buffer_;
  --buf->depth;
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->events.size() >= TraceCollector::kMaxEventsPerThread) {
    ++buf->dropped;
    return;
  }
  SpanEvent e;
  e.name = name_;
  e.tid = buf->tid;
  e.depth = depth_;
  e.seq = buf->seq++;
  e.start_ns = start_ns_;
  e.duration_ns = end_ns - start_ns_;
  buf->events.push_back(e);
}

}  // namespace sbr::obs
