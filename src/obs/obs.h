// Observability switchboard. The subsystem has two independent gates:
//
//  * SBR_OBS — a compile-time 0/1 macro set by the build system (CMake
//    option of the same name, default ON). At 0 every instrumentation
//    macro in the codebase expands to nothing and the hot paths carry
//    not even a branch; the library API below still exists so benches
//    and tests compile in both modes (they just observe nothing).
//  * obs::SetEnabled(bool) — a runtime flag (default off). With SBR_OBS
//    compiled in but the flag off, an instrumentation site costs one
//    relaxed atomic load plus an untaken branch; bench_micro pins this
//    at <= 2% of encode time on the Table-2 weather workload.
//
// Instrumentation never changes behaviour: the golden byte-identity
// suite passes with observability compiled out, compiled in but
// disabled, and enabled, at any thread count.
#ifndef SBR_OBS_OBS_H_
#define SBR_OBS_OBS_H_

// The build system defines SBR_OBS=0/1 globally; standalone consumers of
// the headers (editors, tooling) default to "compiled in".
#ifndef SBR_OBS
#define SBR_OBS 1
#endif

#include <atomic>

namespace sbr::obs {

/// True when the instrumentation sites were compiled in (SBR_OBS=1).
constexpr bool CompiledIn() { return SBR_OBS != 0; }

namespace internal {
/// The process-wide runtime gate. Relaxed is deliberate: enabling
/// observability mid-run may miss a few in-flight events, never corrupts.
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// The runtime gate every instrumentation macro checks first.
inline bool Enabled() {
#if SBR_OBS
  return internal::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Flips the runtime gate. A no-op (stays false) when compiled out.
void SetEnabled(bool on);

/// RAII scope for tests and benches: enables on entry, restores on exit.
class EnabledScope {
 public:
  explicit EnabledScope(bool on = true) : prev_(Enabled()) { SetEnabled(on); }
  ~EnabledScope() { SetEnabled(prev_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool prev_;
};

}  // namespace sbr::obs

#endif  // SBR_OBS_OBS_H_
