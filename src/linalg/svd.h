// Thin singular value decomposition helpers. The SVD base-signal
// construction (paper Appendix) only needs the top-k right singular vectors
// of the K x W candidate-interval matrix, which we obtain from the
// eigendecomposition of the W x W Gram matrix R^T R.
#ifndef SBR_LINALG_SVD_H_
#define SBR_LINALG_SVD_H_

#include <vector>

#include "linalg/matrix.h"

namespace sbr::linalg {

/// Result of a (partial) right-singular-vector computation.
struct RightSingularVectors {
  /// Singular values sigma_1 >= sigma_2 >= ... (k of them).
  std::vector<double> singular_values;
  /// vectors[i] is the unit right singular vector for singular_values[i],
  /// each of length r.cols().
  std::vector<std::vector<double>> vectors;
};

/// Top-k right singular vectors of r (k is clamped to r.cols()).
/// Eigenvalues of R^T R are the squared singular values; tiny negative
/// round-off eigenvalues are clamped to zero.
RightSingularVectors TopRightSingularVectors(const Matrix& r, size_t k);

}  // namespace sbr::linalg

#endif  // SBR_LINALG_SVD_H_
