#include "linalg/dct.h"

#include <cassert>
#include <cmath>
#include <complex>
#include <numbers>

#include "linalg/fft.h"

namespace sbr::linalg {
namespace {

using Complex = std::complex<double>;

// Even/odd interleaving used by Makhoul's DCT-via-FFT:
// v[i] = x[2i] for the first half, v[n-1-i] = x[2i+1] for the second.
std::vector<Complex> Interleave(std::span<const double> x) {
  const size_t n = x.size();
  std::vector<Complex> v(n);
  size_t idx = 0;
  for (size_t i = 0; i < n; i += 2) v[idx++] = Complex(x[i], 0.0);
  for (size_t i = (n % 2 == 0) ? n - 1 : n - 2; idx < n; i -= 2) {
    v[idx++] = Complex(x[i], 0.0);
    if (i < 2) break;
  }
  return v;
}

}  // namespace

std::vector<double> Dct2(std::span<const double> input) {
  const size_t n = input.size();
  if (n == 0) return {};
  if (n == 1) return {input[0]};
  std::vector<Complex> v = Interleave(input);
  std::vector<Complex> fft = Fft(v);
  std::vector<double> out(n);
  for (size_t k = 0; k < n; ++k) {
    const double angle =
        -std::numbers::pi * static_cast<double>(k) / (2.0 * static_cast<double>(n));
    out[k] = (fft[k] * Complex(std::cos(angle), std::sin(angle))).real();
  }
  return out;
}

std::vector<double> Idct2(std::span<const double> coeffs) {
  const size_t n = coeffs.size();
  if (n == 0) return {};
  if (n == 1) return {coeffs[0]};
  // Reconstruct the FFT of the interleaved sequence from the real DCT
  // values: W_k = C[k] - i C[n-k] (k > 0), V[k] = e^{+i pi k / 2n} W_k.
  std::vector<Complex> fft(n);
  fft[0] = Complex(coeffs[0], 0.0);
  for (size_t k = 1; k < n; ++k) {
    const double angle =
        std::numbers::pi * static_cast<double>(k) / (2.0 * static_cast<double>(n));
    const Complex w(coeffs[k], -coeffs[n - k]);
    fft[k] = w * Complex(std::cos(angle), std::sin(angle));
  }
  std::vector<Complex> v = Ifft(fft);
  std::vector<double> out(n);
  size_t idx = 0;
  for (size_t i = 0; i < n; i += 2) out[i] = v[idx++].real();
  for (size_t i = (n % 2 == 0) ? n - 1 : n - 2; idx < n; i -= 2) {
    out[i] = v[idx++].real();
    if (i < 2) break;
  }
  return out;
}

std::vector<double> DctOrthonormal(std::span<const double> input) {
  std::vector<double> out = Dct2(input);
  const size_t n = input.size();
  if (n == 0) return out;
  const double s0 = std::sqrt(1.0 / static_cast<double>(n));
  const double sk = std::sqrt(2.0 / static_cast<double>(n));
  out[0] *= s0;
  for (size_t k = 1; k < n; ++k) out[k] *= sk;
  return out;
}

std::vector<double> IdctOrthonormal(std::span<const double> coeffs) {
  const size_t n = coeffs.size();
  if (n == 0) return {};
  const double s0 = std::sqrt(1.0 / static_cast<double>(n));
  const double sk = std::sqrt(2.0 / static_cast<double>(n));
  std::vector<double> unnorm(n);
  unnorm[0] = coeffs[0] / s0;
  for (size_t k = 1; k < n; ++k) unnorm[k] = coeffs[k] / sk;
  return Idct2(unnorm);
}

std::vector<double> Dct2Naive(std::span<const double> input) {
  const size_t n = input.size();
  std::vector<double> out(n, 0.0);
  for (size_t k = 0; k < n; ++k) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += input[i] * std::cos(std::numbers::pi * (2.0 * i + 1.0) *
                                 static_cast<double>(k) /
                                 (2.0 * static_cast<double>(n)));
    }
    out[k] = sum;
  }
  return out;
}

}  // namespace sbr::linalg
