// Cyclic Jacobi eigendecomposition for real symmetric matrices. Sufficient
// for the W x W Gram matrices (W ~ sqrt(n) ~ a few hundred) of the
// SVD-based base-signal construction.
#ifndef SBR_LINALG_JACOBI_H_
#define SBR_LINALG_JACOBI_H_

#include <vector>

#include "linalg/matrix.h"

namespace sbr::linalg {

/// Result of a symmetric eigendecomposition A = V diag(values) V^T.
struct EigenDecomposition {
  /// Eigenvalues sorted in decreasing order.
  std::vector<double> values;
  /// Column i of this matrix is the unit eigenvector for values[i].
  Matrix vectors;
  /// Number of full sweeps performed before convergence.
  int sweeps = 0;
};

/// Decomposes a symmetric matrix. `a` must be square and symmetric
/// (asserted up to a small tolerance). Converges when the off-diagonal
/// Frobenius mass drops below `tol` times the matrix norm, or after
/// `max_sweeps` sweeps.
EigenDecomposition JacobiEigen(const Matrix& a, double tol = 1e-12,
                               int max_sweeps = 64);

}  // namespace sbr::linalg

#endif  // SBR_LINALG_JACOBI_H_
