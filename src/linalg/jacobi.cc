#include "linalg/jacobi.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace sbr::linalg {
namespace {

double OffDiagonalNorm(const Matrix& a) {
  double sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (i != j) sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

}  // namespace

EigenDecomposition JacobiEigen(const Matrix& a_in, double tol,
                               int max_sweeps) {
  assert(a_in.rows() == a_in.cols());
  const size_t n = a_in.rows();
  Matrix a = a_in;
  Matrix v = Matrix::Identity(n);

  const double scale = std::max(a.FrobeniusNorm(), 1e-300);
  int sweeps = 0;
  while (sweeps < max_sweeps && OffDiagonalNorm(a) > tol * scale) {
    ++sweeps;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Smaller-root tangent for numerical stability.
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation G(p, q, theta) on both sides: A <- G^T A G.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors: V <- V G.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by decreasing eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] > diag[y]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    out.values[i] = diag[order[i]];
    for (size_t k = 0; k < n; ++k) out.vectors(k, i) = v(k, order[i]);
  }
  out.sweeps = sweeps;
  return out;
}

}  // namespace sbr::linalg
