#include "linalg/fft.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace sbr::linalg {
namespace {

using Complex = std::complex<double>;

// Bluestein's algorithm: expresses a length-n DFT as a convolution, which is
// evaluated with power-of-two FFTs of length >= 2n - 1.
std::vector<Complex> Bluestein(std::span<const Complex> input, bool inverse) {
  const size_t n = input.size();
  const double sign = inverse ? 1.0 : -1.0;
  // Chirp w[j] = e^{sign * pi i j^2 / n}. j^2 mod 2n keeps the argument
  // bounded so precision does not degrade for large j.
  std::vector<Complex> chirp(n);
  for (size_t j = 0; j < n; ++j) {
    const uintmax_t j2 = (static_cast<uintmax_t>(j) * j) % (2 * n);
    const double angle =
        sign * std::numbers::pi * static_cast<double>(j2) / static_cast<double>(n);
    chirp[j] = Complex(std::cos(angle), std::sin(angle));
  }
  const size_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<Complex> a(m, Complex(0, 0)), b(m, Complex(0, 0));
  for (size_t j = 0; j < n; ++j) a[j] = input[j] * chirp[j];
  b[0] = std::conj(chirp[0]);
  for (size_t j = 1; j < n; ++j) b[j] = b[m - j] = std::conj(chirp[j]);
  FftPow2(a, /*inverse=*/false);
  FftPow2(b, /*inverse=*/false);
  for (size_t j = 0; j < m; ++j) a[j] *= b[j];
  FftPow2(a, /*inverse=*/true);
  std::vector<Complex> out(n);
  for (size_t j = 0; j < n; ++j) {
    out[j] = a[j] * chirp[j] / static_cast<double>(m);
  }
  return out;
}

}  // namespace

void FftPow2(std::vector<Complex>& data, bool inverse) {
  const size_t n = data.size();
  assert(IsPowerOfTwo(n));
  if (n == 1) return;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1, 0);
      for (size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  // No normalization here: Fft()/Ifft() wrappers own the 1/n convention.
}

std::vector<Complex> Fft(std::span<const Complex> input) {
  if (input.empty()) return {};
  if (IsPowerOfTwo(input.size())) {
    std::vector<Complex> data(input.begin(), input.end());
    FftPow2(data, /*inverse=*/false);
    return data;
  }
  return Bluestein(input, /*inverse=*/false);
}

std::vector<Complex> Ifft(std::span<const Complex> input) {
  if (input.empty()) return {};
  std::vector<Complex> out;
  if (IsPowerOfTwo(input.size())) {
    out.assign(input.begin(), input.end());
    FftPow2(out, /*inverse=*/true);
  } else {
    out = Bluestein(input, /*inverse=*/true);
  }
  const double inv = 1.0 / static_cast<double>(input.size());
  for (auto& v : out) v *= inv;
  return out;
}

std::vector<Complex> FftReal(std::span<const double> input) {
  std::vector<Complex> tmp(input.size());
  for (size_t i = 0; i < input.size(); ++i) tmp[i] = Complex(input[i], 0.0);
  return Fft(tmp);
}

size_t NextPowerOfTwo(size_t n) {
  assert(n >= 1);
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace sbr::linalg
