// Dense row-major matrix used by the SVD-based base-signal construction and
// by the dataset containers. Deliberately small: only the operations the
// library needs, no expression templates.
#ifndef SBR_LINALG_MATRIX_H_
#define SBR_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace sbr::linalg {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from a flat row-major buffer; data.size() must be rows * cols.
  Matrix(size_t rows, size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// View of row r as a contiguous span.
  std::span<const double> Row(size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> MutableRow(size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of column c.
  std::vector<double> Col(size_t c) const;

  const std::vector<double>& data() const { return data_; }

  Matrix Transposed() const;

  /// this * other; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// this^T * this, a cols x cols symmetric Gram matrix, computed without
  /// materializing the transpose.
  Matrix Gram() const;

  /// Identity matrix of order n.
  static Matrix Identity(size_t n);

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sbr::linalg

#endif  // SBR_LINALG_MATRIX_H_
