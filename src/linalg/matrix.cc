#include "linalg/matrix.h"

#include <cmath>

namespace sbr::linalg {

std::vector<double> Matrix::Col(size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += v * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const std::span<const double> row = Row(r);
    for (size_t i = 0; i < cols_; ++i) {
      const double v = row[i];
      if (v == 0.0) continue;
      for (size_t j = i; j < cols_; ++j) {
        out(i, j) += v * row[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
  }
  return out;
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace sbr::linalg
