#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/jacobi.h"

namespace sbr::linalg {

RightSingularVectors TopRightSingularVectors(const Matrix& r, size_t k) {
  RightSingularVectors out;
  if (r.empty()) return out;
  k = std::min(k, r.cols());

  const Matrix gram = r.Gram();
  const EigenDecomposition eig = JacobiEigen(gram);

  out.singular_values.reserve(k);
  out.vectors.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const double lambda = std::max(eig.values[i], 0.0);
    out.singular_values.push_back(std::sqrt(lambda));
    out.vectors.push_back(eig.vectors.Col(i));
  }
  return out;
}

}  // namespace sbr::linalg
