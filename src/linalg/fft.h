// Fast Fourier transforms. The paper's DCT baseline and the fast DCT-II/III
// used by the compressors are built on these.
//
// Power-of-two sizes use an iterative radix-2 Cooley-Tukey; arbitrary sizes
// fall back to Bluestein's chirp-z algorithm so that callers never need to
// pad their data themselves.
#ifndef SBR_LINALG_FFT_H_
#define SBR_LINALG_FFT_H_

#include <complex>
#include <span>
#include <vector>

namespace sbr::linalg {

/// In-place forward FFT of a power-of-two-length buffer.
/// Requires data.size() to be a power of two (1 is allowed).
void FftPow2(std::vector<std::complex<double>>& data, bool inverse);

/// Forward DFT of arbitrary length: X[k] = sum_j x[j] e^{-2 pi i jk / n}.
std::vector<std::complex<double>> Fft(
    std::span<const std::complex<double>> input);

/// Inverse DFT, normalized by 1/n so that Ifft(Fft(x)) == x.
std::vector<std::complex<double>> Ifft(
    std::span<const std::complex<double>> input);

/// Real-input convenience wrapper for the forward DFT.
std::vector<std::complex<double>> FftReal(std::span<const double> input);

/// True iff n is a (positive) power of two.
constexpr bool IsPowerOfTwo(size_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

}  // namespace sbr::linalg

#endif  // SBR_LINALG_FFT_H_
