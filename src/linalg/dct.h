// Discrete cosine transforms (type II and its inverse), both a naive
// O(n^2) reference and an O(n log n) FFT-based implementation (Makhoul's
// reordering). The unnormalized kernel matches the paper's Appendix:
// basis value cos((2i+1) pi f / (2W)).
#ifndef SBR_LINALG_DCT_H_
#define SBR_LINALG_DCT_H_

#include <span>
#include <vector>

namespace sbr::linalg {

/// Unnormalized DCT-II: C[k] = sum_i x[i] cos(pi (2i+1) k / (2n)).
/// O(n log n) via FFT.
std::vector<double> Dct2(std::span<const double> input);

/// Exact inverse of Dct2 (i.e. scaled DCT-III). O(n log n).
std::vector<double> Idct2(std::span<const double> coeffs);

/// Orthonormal DCT-II: the unitary variant where truncating to the largest
/// coefficients minimizes the L2 reconstruction error. X[k] = s_k * Dct2[k]
/// with s_0 = sqrt(1/n), s_k = sqrt(2/n).
std::vector<double> DctOrthonormal(std::span<const double> input);

/// Inverse of DctOrthonormal.
std::vector<double> IdctOrthonormal(std::span<const double> coeffs);

/// Naive O(n^2) DCT-II used as a test oracle for the fast path.
std::vector<double> Dct2Naive(std::span<const double> input);

}  // namespace sbr::linalg

#endif  // SBR_LINALG_DCT_H_
