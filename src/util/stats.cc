#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sbr {

double SumSquaredError(std::span<const double> truth,
                       std::span<const double> approx) {
  assert(truth.size() == approx.size());
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double d = approx[i] - truth[i];
    sum += d * d;
  }
  return sum;
}

double SumSquaredRelativeError(std::span<const double> truth,
                               std::span<const double> approx, double floor) {
  assert(truth.size() == approx.size());
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double denom = std::max(std::abs(truth[i]), floor);
    const double d = (approx[i] - truth[i]) / denom;
    sum += d * d;
  }
  return sum;
}

double MaxAbsoluteError(std::span<const double> truth,
                        std::span<const double> approx) {
  assert(truth.size() == approx.size());
  double m = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    m = std::max(m, std::abs(approx[i] - truth[i]));
  }
  return m;
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mu = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mu) * (v - mu);
  return sum / static_cast<double>(values.size());
}

double PearsonCorrelation(std::span<const double> a,
                          std::span<const double> b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

MinMax Extent(std::span<const double> values) {
  assert(!values.empty());
  MinMax mm{values[0], values[0]};
  for (double v : values) {
    mm.min = std::min(mm.min, v);
    mm.max = std::max(mm.max, v);
  }
  return mm;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

}  // namespace sbr
