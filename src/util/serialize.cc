#include "util/serialize.h"

#include <bit>

namespace sbr {

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back((v >> (8 * i)) & 0xff);
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back((v >> (8 * i)) & 0xff);
}

void BinaryWriter::PutDouble(double v) {
  PutU64(std::bit_cast<uint64_t>(v));
}

void BinaryWriter::PutF32(double v) {
  PutU32(std::bit_cast<uint32_t>(static_cast<float>(v)));
}

void BinaryWriter::PutBytes(std::span<const uint8_t> bytes) {
  PutU32(static_cast<uint32_t>(bytes.size()));
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void BinaryWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void BinaryWriter::PutDoubles(std::span<const double> values) {
  PutU32(static_cast<uint32_t>(values.size()));
  for (double v : values) PutDouble(v);
}

Status BinaryReader::Need(size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::DataLoss("truncated input: need " + std::to_string(n) +
                            " bytes at offset " + std::to_string(pos_) +
                            ", have " + std::to_string(remaining()));
  }
  return Status::Ok();
}

Status BinaryReader::GetU8(uint8_t* out) {
  SBR_RETURN_IF_ERROR(Need(1));
  *out = data_[pos_++];
  return Status::Ok();
}

Status BinaryReader::GetU32(uint32_t* out) {
  SBR_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  *out = v;
  return Status::Ok();
}

Status BinaryReader::GetU64(uint64_t* out) {
  SBR_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  *out = v;
  return Status::Ok();
}

Status BinaryReader::GetI64(int64_t* out) {
  uint64_t v;
  SBR_RETURN_IF_ERROR(GetU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::Ok();
}

Status BinaryReader::GetDouble(double* out) {
  uint64_t bits;
  SBR_RETURN_IF_ERROR(GetU64(&bits));
  *out = std::bit_cast<double>(bits);
  return Status::Ok();
}

Status BinaryReader::GetF32(double* out) {
  uint32_t bits;
  SBR_RETURN_IF_ERROR(GetU32(&bits));
  *out = static_cast<double>(std::bit_cast<float>(bits));
  return Status::Ok();
}

Status BinaryReader::GetString(std::string* out) {
  uint32_t len;
  SBR_RETURN_IF_ERROR(GetU32(&len));
  SBR_RETURN_IF_ERROR(Need(len));
  out->assign(reinterpret_cast<const char*>(data_.data()) + pos_, len);
  pos_ += len;
  return Status::Ok();
}

Status BinaryReader::GetDoubles(std::vector<double>* out) {
  uint32_t len;
  SBR_RETURN_IF_ERROR(GetU32(&len));
  SBR_RETURN_IF_ERROR(Need(static_cast<size_t>(len) * 8));
  out->clear();
  out->reserve(len);
  for (uint32_t i = 0; i < len; ++i) {
    double v;
    SBR_RETURN_IF_ERROR(GetDouble(&v));
    out->push_back(v);
  }
  return Status::Ok();
}

Status BinaryReader::GetRaw(size_t n, std::vector<uint8_t>* out) {
  SBR_RETURN_IF_ERROR(Need(n));
  out->assign(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return Status::Ok();
}

}  // namespace sbr
