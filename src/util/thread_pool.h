// Fixed-size worker pool for the parallel encoding engine. The only
// primitive the kernels use is ParallelFor with *static chunking*: the
// index range [0, n) is cut into min(threads, n) contiguous chunks whose
// boundaries depend only on (n, threads), never on the pool size or on
// runtime timing, so per-chunk partial results can be merged in chunk
// order for bitwise-deterministic reductions at any thread count.
//
// The calling thread always participates (it claims chunks from the same
// shared counter the workers drain), which makes nested ParallelFor calls
// deadlock-free: even when every pool worker is busy, the nested caller
// finishes its own chunks by itself.
#ifndef SBR_UTIL_THREAD_POOL_H_
#define SBR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sbr::util {

/// std::thread::hardware_concurrency(), clamped to at least 1 (the
/// standard allows it to report 0). Callers that want "use the machine"
/// pass this as the `threads` option.
size_t HardwareThreads();

class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 is valid: every ParallelFor
  /// then runs entirely on the calling thread, still chunked identically).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Runs `body(chunk, begin, end)` over the static partition of [0, n)
  /// into min(num_chunks, n) contiguous chunks; chunk c covers
  /// [c*n/C, (c+1)*n/C). Blocks until every chunk has finished. The body
  /// must not throw. Safe to call from inside another ParallelFor body.
  void ParallelFor(
      size_t n, size_t num_chunks,
      const std::function<void(size_t chunk, size_t begin, size_t end)>& body);

  /// Process-wide pool, lazily constructed with HardwareThreads() - 1
  /// workers (the caller is the remaining thread). Never constructed when
  /// every caller sticks to threads = 1.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Convenience used by the encoding kernels: `threads` is the user-facing
/// option (1 = run inline on the calling thread, the exact serial path);
/// larger values fan the range out over the shared pool. Chunk boundaries
/// depend only on (threads, n).
void ParallelFor(
    size_t threads, size_t n,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& body);

/// Number of chunks ParallelFor(threads, n, ...) produces (0 when n == 0,
/// 1 when threads <= 1, min(threads, n) otherwise). Callers sizing
/// per-chunk partial-result buffers must use this.
size_t NumChunks(size_t threads, size_t n);

}  // namespace sbr::util

#endif  // SBR_UTIL_THREAD_POOL_H_
