#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sbr {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  have_spare_gaussian_ = false;
  spare_gaussian_ = 0.0;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::Gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  have_spare_gaussian_ = true;
  return u * mul;
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction, clamped at zero.
    const double x = Gaussian(mean, std::sqrt(mean));
    return std::max<int64_t>(0, static_cast<int64_t>(std::llround(x)));
  }
  // Knuth's multiplication method.
  const double limit = std::exp(-mean);
  double prod = 1.0;
  int64_t count = -1;
  do {
    ++count;
    prod *= NextDouble();
  } while (prod > limit);
  return count;
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / rate;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm: k iterations, set membership via sorted vector since
  // k is small in our workloads.
  std::vector<size_t> chosen;
  chosen.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    const size_t t =
        static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace sbr
