// O(1) range-sum queries over a fixed series, used by the regression kernels
// to avoid recomputing sum(x) and sum(x^2) for every candidate shift.
#ifndef SBR_UTIL_PREFIX_SUMS_H_
#define SBR_UTIL_PREFIX_SUMS_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace sbr {

/// Precomputed prefix sums of a series and of its squares.
class PrefixSums {
 public:
  PrefixSums() = default;

  explicit PrefixSums(std::span<const double> values) { Reset(values); }

  /// Rebuilds the tables for a new series.
  void Reset(std::span<const double> values) {
    sum_.assign(values.size() + 1, 0.0);
    sum_sq_.assign(values.size() + 1, 0.0);
    for (size_t i = 0; i < values.size(); ++i) {
      sum_[i + 1] = sum_[i] + values[i];
      sum_sq_[i + 1] = sum_sq_[i] + values[i] * values[i];
    }
  }

  /// Number of values covered.
  size_t size() const { return sum_.empty() ? 0 : sum_.size() - 1; }

  /// Sum of values in [start, start + length).
  double RangeSum(size_t start, size_t length) const {
    assert(start + length < sum_.size());
    return sum_[start + length] - sum_[start];
  }

  /// Sum of squared values in [start, start + length).
  double RangeSumSquares(size_t start, size_t length) const {
    assert(start + length < sum_sq_.size());
    return sum_sq_[start + length] - sum_sq_[start];
  }

 private:
  std::vector<double> sum_;
  std::vector<double> sum_sq_;
};

}  // namespace sbr

#endif  // SBR_UTIL_PREFIX_SUMS_H_
