// O(1) range-sum queries over a fixed series, used by the regression kernels
// to avoid recomputing sum(x) and sum(x^2) for every candidate shift.
#ifndef SBR_UTIL_PREFIX_SUMS_H_
#define SBR_UTIL_PREFIX_SUMS_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace sbr {

/// Precomputed prefix sums of a series and of its squares. Supports
/// incremental extension via Append: appending values one at a time
/// performs the same left-to-right additions Reset would, so an
/// incrementally grown table is bitwise identical to one rebuilt from the
/// full series (the property the encode workspace's trial-base extension
/// relies on).
class PrefixSums {
 public:
  PrefixSums() = default;

  explicit PrefixSums(std::span<const double> values) { Reset(values); }

  /// Rebuilds the tables for a new series. Keeps existing capacity.
  void Reset(std::span<const double> values) {
    sum_.assign(values.size() + 1, 0.0);
    sum_sq_.assign(values.size() + 1, 0.0);
    for (size_t i = 0; i < values.size(); ++i) {
      sum_[i + 1] = sum_[i] + values[i];
      sum_sq_[i + 1] = sum_sq_[i] + values[i] * values[i];
    }
  }

  /// Reserves table capacity for a series of `n` values, so subsequent
  /// Append calls do not reallocate.
  void Reserve(size_t n) {
    sum_.reserve(n + 1);
    sum_sq_.reserve(n + 1);
  }

  /// Extends the series by one value in O(1). Usable on a
  /// default-constructed table (an empty series).
  void Append(double value) {
    if (sum_.empty()) {
      sum_.push_back(0.0);
      sum_sq_.push_back(0.0);
    }
    sum_.push_back(sum_.back() + value);
    sum_sq_.push_back(sum_sq_.back() + value * value);
  }

  /// Number of values covered.
  size_t size() const { return sum_.empty() ? 0 : sum_.size() - 1; }

  /// True when [start, start + length) lies within the covered series.
  /// Written without computing start + length, which could wrap on
  /// adversarial inputs and make a malformed range look valid.
  bool CoversRange(size_t start, size_t length) const {
    return start <= size() && length <= size() - start;
  }

  /// Sum of values in [start, start + length).
  double RangeSum(size_t start, size_t length) const {
    assert(CoversRange(start, length));
    return sum_[start + length] - sum_[start];
  }

  /// Sum of squared values in [start, start + length).
  double RangeSumSquares(size_t start, size_t length) const {
    assert(CoversRange(start, length));
    return sum_sq_[start + length] - sum_sq_[start];
  }

 private:
  std::vector<double> sum_;
  std::vector<double> sum_sq_;
};

}  // namespace sbr

#endif  // SBR_UTIL_PREFIX_SUMS_H_
