// Error metrics and descriptive statistics shared by the core algorithms,
// the baselines and the benchmark harness.
#ifndef SBR_UTIL_STATS_H_
#define SBR_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace sbr {

/// Floor applied to |y| in relative-error denominators so that occasional
/// zero readings do not blow the metric up. Matches DESIGN.md note 10.
inline constexpr double kRelativeErrorFloor = 1.0;

/// Sum of squared differences sum_i (approx[i] - truth[i])^2.
double SumSquaredError(std::span<const double> truth,
                       std::span<const double> approx);

/// Sum of squared relative differences
/// sum_i ((approx[i] - truth[i]) / max(|truth[i]|, floor))^2.
double SumSquaredRelativeError(std::span<const double> truth,
                               std::span<const double> approx,
                               double floor = kRelativeErrorFloor);

/// max_i |approx[i] - truth[i]|.
double MaxAbsoluteError(std::span<const double> truth,
                        std::span<const double> approx);

/// Mean of the values; 0 for an empty span.
double Mean(std::span<const double> values);

/// Population variance; 0 for spans shorter than 2.
double Variance(std::span<const double> values);

/// Pearson correlation coefficient of two equal-length spans; 0 if either
/// side has zero variance.
double PearsonCorrelation(std::span<const double> a, std::span<const double> b);

/// Minimum and maximum of a non-empty span.
struct MinMax {
  double min;
  double max;
};
MinMax Extent(std::span<const double> values);

/// Running mean/variance accumulator (Welford), used by long simulations
/// where materializing all samples would be wasteful.
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance of the samples seen so far.
  double variance() const { return count_ > 0 ? m2_ / count_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sbr

#endif  // SBR_UTIL_STATS_H_
