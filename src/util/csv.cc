#include "util/csv.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace sbr {
namespace {

Status ParseLine(const std::string& line, size_t line_no,
                 std::vector<double>* out) {
  out->clear();
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(',', start);
    if (end == std::string::npos) end = line.size();
    const std::string cell = line.substr(start, end - start);
    double value = 0.0;
    const char* first = cell.data();
    const char* last = cell.data() + cell.size();
    // Skip leading whitespace; from_chars does not.
    while (first < last && (*first == ' ' || *first == '\t')) ++first;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": cannot parse cell '" + cell + "'");
    }
    out->push_back(value);
    if (end == line.size()) break;
    start = end + 1;
  }
  return Status::Ok();
}

}  // namespace

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for write: " + path);
  if (!table.columns.empty()) {
    for (size_t j = 0; j < table.columns.size(); ++j) {
      if (j) out << ',';
      out << table.columns[j];
    }
    out << '\n';
  }
  char buf[64];
  for (const auto& row : table.rows) {
    for (size_t j = 0; j < row.size(); ++j) {
      if (j) out << ',';
      std::snprintf(buf, sizeof(buf), "%.17g", row[j]);
      out << buf;
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::DataLoss("write failed: " + path);
  return Status::Ok();
}

StatusOr<CsvTable> ReadCsv(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open for read: " + path);
  CsvTable table;
  std::string line;
  size_t line_no = 0;
  if (has_header && std::getline(in, line)) {
    ++line_no;
    std::stringstream ss(line);
    std::string col;
    while (std::getline(ss, col, ',')) table.columns.push_back(col);
  }
  size_t width = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<double> row;
    SBR_RETURN_IF_ERROR(ParseLine(line, line_no, &row));
    if (width == 0) {
      width = row.size();
    } else if (row.size() != width) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(width) + " cells, got " + std::to_string(row.size()));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace sbr
