// Minimal CSV reading/writing for numeric matrices. Used to export bench
// series and to import real sensor traces in place of the synthetic
// generators (see DESIGN.md section 4).
#ifndef SBR_UTIL_CSV_H_
#define SBR_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace sbr {

/// A numeric table: `columns` holds per-column names (may be empty when the
/// file has no header), `rows[i][j]` the value in row i, column j.
struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;
};

/// Writes the table to `path`. A header line is emitted iff `columns` is
/// non-empty. Values are written with enough digits to round-trip.
Status WriteCsv(const std::string& path, const CsvTable& table);

/// Reads a numeric CSV. If `has_header` is true the first line populates
/// `columns`. Fails on ragged rows or non-numeric cells.
StatusOr<CsvTable> ReadCsv(const std::string& path, bool has_header);

}  // namespace sbr

#endif  // SBR_UTIL_CSV_H_
