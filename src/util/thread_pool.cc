#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/metrics.h"

namespace sbr::util {
namespace {

// Shared state of one ParallelFor call. Kept on the heap behind a
// shared_ptr because enqueued helper tasks can outlive the call (they may
// be popped after every chunk is already done, in which case they see an
// exhausted counter and return without touching the body).
struct ForState {
  size_t n = 0;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t done = 0;
};

// Claims chunks until the counter is exhausted. Runs on the caller and on
// any worker that picked up a helper task. `state.body` is only
// dereferenced for a successfully claimed chunk, which the caller is
// guaranteed to still be waiting on.
void RunChunks(ForState& state, bool helper) {
  for (;;) {
    const size_t c = state.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= state.num_chunks) return;
    const size_t begin = c * state.n / state.num_chunks;
    const size_t end = (c + 1) * state.n / state.num_chunks;
    {
      SBR_OBS_TIMER(chunk_timer, "pool.chunk_us");
      (*state.body)(c, begin, end);
    }
    // Two sites, not a ternary name: the counter macro caches the metric in
    // a function-local static keyed by its call site.
    if (helper) {
      SBR_OBS_COUNT("pool.worker_chunks", 1);
    } else {
      SBR_OBS_COUNT("pool.caller_chunks", 1);
    }
    std::lock_guard<std::mutex> lock(state.mu);
    if (++state.done == state.num_chunks) state.done_cv.notify_all();
  }
}

}  // namespace

size_t HardwareThreads() {
  const unsigned h = std::thread::hardware_concurrency();
  return h == 0 ? 1 : static_cast<size_t>(h);
}

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t num_chunks,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  num_chunks = std::min(num_chunks, n);
  if (num_chunks <= 1) {
    body(0, 0, n);
    return;
  }

  SBR_OBS_COUNT("pool.parallel_fors", 1);
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->num_chunks = num_chunks;
  state->body = &body;

  // One helper task per chunk beyond the caller's first; each helper loops
  // over the shared counter, so idle workers drain whatever the caller has
  // not claimed yet.
  const size_t helpers =
      workers_.empty() ? 0 : std::min(workers_.size(), num_chunks - 1);
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < helpers; ++i) {
        tasks_.emplace_back([state] { RunChunks(*state, /*helper=*/true); });
      }
      SBR_OBS_COUNT("pool.tasks_enqueued", helpers);
      SBR_OBS_GAUGE_SET("pool.queue_depth", tasks_.size());
    }
    cv_.notify_all();
  }

  RunChunks(*state, /*helper=*/false);
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock,
                      [&] { return state->done == state->num_chunks; });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(HardwareThreads() - 1);
  return pool;
}

void ParallelFor(
    size_t threads, size_t n,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& body) {
  if (n == 0) return;
  if (threads <= 1) {
    body(0, 0, n);
    return;
  }
  ThreadPool::Shared().ParallelFor(n, threads, body);
}

size_t NumChunks(size_t threads, size_t n) {
  if (n == 0) return 0;
  if (threads <= 1) return 1;
  return std::min(threads, n);
}

}  // namespace sbr::util
