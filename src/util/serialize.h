// Binary serialization helpers used by transmissions and the base-station
// chunk logs. Encoding is explicit little-endian fixed-width so that logs
// written on one machine decode on any other.
#ifndef SBR_UTIL_SERIALIZE_H_
#define SBR_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace sbr {

/// Appends primitive values to a growable byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buffer_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Stores the IEEE-754 bit pattern; exact round trip.
  void PutDouble(double v);
  /// Stores the value rounded to IEEE-754 binary32 (the compact wire
  /// mode); reading it back yields the rounded double.
  void PutF32(double v);
  /// Length-prefixed (u32) raw bytes.
  void PutBytes(std::span<const uint8_t> bytes);
  /// Raw bytes, no length prefix (for callers that frame explicitly).
  void PutRaw(std::span<const uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }
  /// Length-prefixed (u32) string.
  void PutString(const std::string& s);
  /// Length-prefixed (u32) vector of doubles.
  void PutDoubles(std::span<const double> values);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Reads primitive values back out of a byte span. All getters return a
/// non-OK status on truncated input instead of reading out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const uint8_t> data) : data_(data) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetI64(int64_t* out);
  Status GetDouble(double* out);
  /// Reads a binary32 value written by PutF32, widened to double.
  Status GetF32(double* out);
  Status GetString(std::string* out);
  Status GetDoubles(std::vector<double>* out);
  /// Reads exactly `n` raw bytes (no length prefix).
  Status GetRaw(size_t n, std::vector<uint8_t>* out);

  /// Bytes consumed so far.
  size_t position() const { return pos_; }
  /// Bytes left unread.
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace sbr

#endif  // SBR_UTIL_SERIALIZE_H_
