// Deterministic random number generation for reproducible datasets.
//
// We deliberately implement our own distributions (uniform, Gaussian,
// Poisson-approximation) on top of xoshiro256++ instead of using
// <random> distributions: the standard does not pin down distribution
// algorithms, so std::normal_distribution output differs across standard
// libraries. Every synthetic dataset in this repository must be
// bit-reproducible from a seed on any platform.
#ifndef SBR_UTIL_RNG_H_
#define SBR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbr {

/// xoshiro256++ PRNG (Blackman & Vigna), seeded via SplitMix64 so that any
/// 64-bit seed, including 0, yields a well-mixed state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  /// Re-seeds the generator; identical seeds replay identical streams.
  void Seed(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate via the Marsaglia polar method (deterministic
  /// given the stream, unlike std::normal_distribution).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Poisson-distributed count. Uses Knuth's method for small means and a
  /// clamped normal approximation for large means (mean > 64).
  int64_t Poisson(double mean);

  /// Exponential variate with the given rate (lambda).
  double Exponential(double rate);

  /// Returns k distinct indices drawn uniformly from [0, n), in increasing
  /// order (Floyd's algorithm). Requires k <= n.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace sbr

#endif  // SBR_UTIL_RNG_H_
