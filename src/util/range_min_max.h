// O(1) range-min/range-max queries over an immutable series (sparse
// table). Built once per base-signal version by the query engine so the
// min/max legs of a compressed-domain aggregate cost O(1) per interval
// instead of a scan over the mapped base segment.
//
// Build is O(n log n) time and space; queries overlap two power-of-two
// windows, which is exact for idempotent folds like min/max. The answers
// are bitwise identical to a left-to-right scan of the same range:
// std::min/std::max over doubles are associative, commutative and
// idempotent (no NaN handling is required here — base signals are finite
// by construction, which the engine's ingest validation enforces).
#ifndef SBR_UTIL_RANGE_MIN_MAX_H_
#define SBR_UTIL_RANGE_MIN_MAX_H_

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace sbr {

/// Precomputed sparse tables for range min and max over a fixed series.
class RangeMinMax {
 public:
  RangeMinMax() = default;

  explicit RangeMinMax(std::span<const double> values) { Reset(values); }

  /// Rebuilds the tables for a new series. An empty series clears them.
  void Reset(std::span<const double> values) {
    n_ = values.size();
    min_.clear();
    max_.clear();
    if (n_ == 0) return;
    const size_t levels = static_cast<size_t>(std::bit_width(n_));
    min_.reserve(levels);
    max_.reserve(levels);
    min_.emplace_back(values.begin(), values.end());
    max_.emplace_back(values.begin(), values.end());
    for (size_t k = 1; (size_t{1} << k) <= n_; ++k) {
      const size_t half = size_t{1} << (k - 1);
      const size_t count = n_ - (size_t{1} << k) + 1;
      const std::vector<double>& pmin = min_[k - 1];
      const std::vector<double>& pmax = max_[k - 1];
      std::vector<double> lmin(count);
      std::vector<double> lmax(count);
      for (size_t i = 0; i < count; ++i) {
        lmin[i] = std::min(pmin[i], pmin[i + half]);
        lmax[i] = std::max(pmax[i], pmax[i + half]);
      }
      min_.push_back(std::move(lmin));
      max_.push_back(std::move(lmax));
    }
  }

  /// Number of values covered (0 = no tables built).
  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// True when [start, start + length) lies within the covered series and
  /// is non-empty. Written without computing start + length, which could
  /// wrap on adversarial inputs.
  bool CoversRange(size_t start, size_t length) const {
    return length > 0 && start < n_ && length <= n_ - start;
  }

  /// Minimum over [start, start + length); length must be >= 1.
  double Min(size_t start, size_t length) const {
    assert(CoversRange(start, length));
    const size_t k = static_cast<size_t>(std::bit_width(length)) - 1;
    return std::min(min_[k][start],
                    min_[k][start + length - (size_t{1} << k)]);
  }

  /// Maximum over [start, start + length); length must be >= 1.
  double Max(size_t start, size_t length) const {
    assert(CoversRange(start, length));
    const size_t k = static_cast<size_t>(std::bit_width(length)) - 1;
    return std::max(max_[k][start],
                    max_[k][start + length - (size_t{1} << k)]);
  }

 private:
  size_t n_ = 0;
  /// min_[k][i] = min over [i, i + 2^k); likewise max_.
  std::vector<std::vector<double>> min_;
  std::vector<std::vector<double>> max_;
};

}  // namespace sbr

#endif  // SBR_UTIL_RANGE_MIN_MAX_H_
