// Lightweight Status / StatusOr error-handling primitives, in the spirit of
// absl::Status. Library code returns Status (or StatusOr<T>) instead of
// throwing; exceptions are reserved for programming errors (assert-like).
#ifndef SBR_UTIL_STATUS_H_
#define SBR_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace sbr {

/// Coarse error classification, a small subset of the canonical codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kDataLoss,
  kInternal,
  kUnimplemented,
};

/// Returns a short human-readable name ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// Value type describing the outcome of an operation. Cheap to copy in the
/// OK case (no allocation); carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing the value of a
/// non-OK StatusOr is a programming error (checked by assert).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: `return my_t;`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status: `return Status::InvalidArgument(...)`.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sbr

/// Propagates a non-OK Status out of the calling function.
#define SBR_RETURN_IF_ERROR(expr)           \
  do {                                      \
    ::sbr::Status _st = (expr);             \
    if (!_st.ok()) return _st;              \
  } while (0)

#endif  // SBR_UTIL_STATUS_H_
