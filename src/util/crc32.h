// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte spans. Used to
// detect corruption of on-air frames and on-disk chunk-log records: a
// flipped bit or truncated buffer fails the checksum instead of reaching
// the decoder.
#ifndef SBR_UTIL_CRC32_H_
#define SBR_UTIL_CRC32_H_

#include <cstdint>
#include <span>

namespace sbr {

/// Initial raw CRC state (before the final bit inversion).
inline constexpr uint32_t kCrc32Init = 0xffffffffu;

/// Folds `data` into a raw CRC state; chain calls to checksum
/// non-contiguous buffers, then apply Crc32Finalize.
uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data);

/// Final bit inversion turning a raw state into the checksum value.
inline uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xffffffffu; }

/// One-shot checksum of a contiguous buffer.
inline uint32_t Crc32(std::span<const uint8_t> data) {
  return Crc32Finalize(Crc32Update(kCrc32Init, data));
}

}  // namespace sbr

#endif  // SBR_UTIL_CRC32_H_
