#include "storage/history_store.h"

#include <algorithm>
#include <cmath>

namespace sbr::storage {
namespace {

/// Exact moment fold of `n` raw samples.
void FoldValues(const double* v, size_t n, MomentSummary* out) {
  for (size_t i = 0; i < n; ++i) {
    out->sum += v[i];
    out->sumsq += v[i] * v[i];
    out->min = std::min(out->min, v[i]);
    out->max = std::max(out->max, v[i]);
  }
  out->count += n;
}

}  // namespace

StatusOr<HistoryStore> HistoryStore::FromLog(const ChunkLog& log,
                                             size_t m_base) {
  HistoryStore store(m_base);
  for (size_t i = 0; i < log.size(); ++i) {
    switch (log.record_type(i)) {
      case RecordType::kTransmission: {
        auto t = log.Read(i);
        if (!t.ok()) return t.status();
        SBR_RETURN_IF_ERROR(store.Ingest(*t));
        break;
      }
      case RecordType::kGap: {
        auto chunks = log.ReadGap(i);
        if (!chunks.ok()) return chunks.status();
        store.MarkGap(*chunks);
        break;
      }
      case RecordType::kSnapshot: {
        auto snap = log.ReadSnapshot(i);
        if (!snap.ok()) return snap.status();
        SBR_RETURN_IF_ERROR(store.ApplySnapshot(*snap));
        break;
      }
      case RecordType::kCheckpoint:
        // Recovery state for the log's owner; carries no history data.
        break;
    }
  }
  return store;
}

Status HistoryStore::Ingest(const core::Transmission& t) {
  if (!t.signal_lengths.empty()) {
    return Status::Unimplemented(
        "multi-rate chunks are not indexable by the history store");
  }
  if (num_signals_ == 0) {
    num_signals_ = t.num_signals;
    chunk_len_ = t.chunk_len;
  } else if (t.num_signals != num_signals_ || t.chunk_len != chunk_len_) {
    return Status::FailedPrecondition("transmission geometry changed");
  }
  auto decoded = decoder_.DecodeChunk(t);
  if (!decoded.ok()) return decoded.status();
  chunks_.push_back(std::make_shared<const std::vector<double>>(
      std::move(decoded).value()));
  AppendIndexLeaves(chunks_.back().get());
  return Status::Ok();
}

void HistoryStore::AppendIndexLeaves(const std::vector<double>* values) {
  if (num_signals_ == 0) return;
  if (index_.empty()) {
    index_.assign(num_signals_, MomentIndex{});
    // Chunks recorded before the first successful ingest are all gaps
    // (geometry was unknown); backfill so index positions equal chunk
    // indices.
    for (size_t c = 0; c + 1 < chunks_.size(); ++c) {
      for (MomentIndex& idx : index_) idx.Append(MomentSummary::Gap());
    }
  }
  for (size_t s = 0; s < num_signals_; ++s) {
    MomentSummary leaf;
    if (values == nullptr) {
      leaf = MomentSummary::Gap();
    } else {
      FoldValues(values->data() + s * chunk_len_, chunk_len_, &leaf);
    }
    index_[s].Append(leaf);
  }
}

void HistoryStore::MarkGap(size_t chunks) {
  for (size_t i = 0; i < chunks; ++i) {
    chunks_.emplace_back(nullptr);
    if (!index_.empty()) AppendIndexLeaves(nullptr);
  }
  num_gaps_ += chunks;
}

Status HistoryStore::ApplySnapshot(const core::BaseSnapshot& snapshot) {
  return decoder_.ApplySnapshot(snapshot);
}

StatusOr<std::vector<double>> HistoryStore::QueryRange(size_t signal,
                                                       size_t t0,
                                                       size_t t1) const {
  if (signal >= num_signals_) {
    return Status::OutOfRange("signal " + std::to_string(signal));
  }
  if (t0 > t1 || t1 > history_len()) {
    return Status::OutOfRange("range [" + std::to_string(t0) + ", " +
                              std::to_string(t1) + ") of " +
                              std::to_string(history_len()));
  }
  std::vector<double> out;
  out.reserve(t1 - t0);
  // Chunk-wise walk. Only chunks with at least one sample inside [t0, t1)
  // are touched: a range that merely abuts a gap (ends exactly where the
  // gap starts, or starts exactly where it ends) succeeds, while any range
  // with a sample inside a gap reports DataLoss.
  for (size_t t = t0; t < t1;) {
    const size_t c = t / chunk_len_;
    if (IsGap(c)) {
      return Status::DataLoss("range touches lost chunk " +
                              std::to_string(c));
    }
    const size_t offset = t % chunk_len_;
    const size_t take = std::min(chunk_len_ - offset, t1 - t);
    const std::vector<double>& flat = *chunks_[c];
    const double* row = flat.data() + signal * chunk_len_ + offset;
    out.insert(out.end(), row, row + take);
    t += take;
  }
  return out;
}

StatusOr<AggregateResult> HistoryStore::AggregateExact(size_t signal,
                                                       size_t t0,
                                                       size_t t1) const {
  if (signal >= num_signals_) {
    return Status::OutOfRange("signal " + std::to_string(signal));
  }
  if (t0 >= t1 || t1 > history_len()) {
    return Status::OutOfRange("range [" + std::to_string(t0) + ", " +
                              std::to_string(t1) + ")");
  }
  MomentSummary acc;
  const size_t c_first = t0 / chunk_len_;
  const size_t c_last = (t1 - 1) / chunk_len_;
  const size_t full_lo = t0 % chunk_len_ == 0 ? c_first : c_first + 1;
  const size_t full_hi = t1 % chunk_len_ == 0 ? c_last + 1 : c_last;

  // Leading partial chunk, interior from the index, trailing partial
  // chunk — the same decomposition as the compressed engine's indexed
  // path, with raw-sample scans where that one walks intervals.
  if (full_lo > c_first || full_lo >= full_hi) {
    if (IsGap(c_first)) {
      return Status::DataLoss("range touches lost chunk " +
                              std::to_string(c_first));
    }
    const size_t lo_t = t0 - c_first * chunk_len_;
    const size_t hi_t =
        std::min(t1 - c_first * chunk_len_, chunk_len_);
    FoldValues(chunks_[c_first]->data() + signal * chunk_len_ + lo_t,
               hi_t - lo_t, &acc);
  }
  if (full_lo < full_hi) {
    const MomentSummary interior = index_[signal].Query(full_lo, full_hi);
    if (interior.has_gap) {
      return Status::DataLoss(
          "range touches lost chunk " +
          std::to_string(index_[signal].FirstGap(full_lo, full_hi)));
    }
    acc.Merge(interior);
  }
  if (c_last > c_first && full_hi <= c_last) {
    if (IsGap(c_last)) {
      return Status::DataLoss("range touches lost chunk " +
                              std::to_string(c_last));
    }
    const size_t hi_t = t1 - c_last * chunk_len_;
    FoldValues(chunks_[c_last]->data() + signal * chunk_len_, hi_t, &acc);
  }

  AggregateResult out;
  out.sum = acc.sum;
  out.min = acc.min;
  out.max = acc.max;
  out.count = acc.count;
  const double n = static_cast<double>(acc.count);
  out.avg = acc.sum / n;
  out.variance = std::max(0.0, acc.sumsq / n - out.avg * out.avg);
  return out;
}

StatusOr<double> HistoryStore::QueryPoint(size_t signal, size_t t) const {
  auto range = QueryRange(signal, t, t + 1);
  if (!range.ok()) return range.status();
  return (*range)[0];
}

StatusOr<linalg::Matrix> HistoryStore::Chunk(size_t c) const {
  if (c >= chunks_.size()) {
    return Status::OutOfRange("chunk " + std::to_string(c));
  }
  if (IsGap(c)) {
    return Status::DataLoss("chunk " + std::to_string(c) + " was lost");
  }
  return linalg::Matrix(num_signals_, chunk_len_, *chunks_[c]);
}

}  // namespace sbr::storage
