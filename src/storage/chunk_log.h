// The base station's per-sensor append-only log (paper Figure 1): every
// received transmission — base-signal updates and interval records alike —
// is appended as one length-prefixed binary record. Reopening a log and
// replaying it through a fresh decoder reconstructs the full approximate
// history of the sensor.
#ifndef SBR_STORAGE_CHUNK_LOG_H_
#define SBR_STORAGE_CHUNK_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/transmission.h"
#include "util/status.h"

namespace sbr::storage {

/// Append-only transmission log. With an empty path the log is purely
/// in-memory; with a path every Append is also written through to disk and
/// Open() recovers all records on restart. A torn final record (partial
/// write at crash) is detected and dropped at open.
class ChunkLog {
 public:
  /// In-memory log.
  ChunkLog() = default;

  /// Opens (or creates) a durable log at `path` and loads existing records.
  static StatusOr<ChunkLog> Open(const std::string& path);

  /// Appends one transmission.
  Status Append(const core::Transmission& t);

  /// Number of records.
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Decodes record `index` (0-based, append order).
  StatusOr<core::Transmission> Read(size_t index) const;

  /// Total bytes across all serialized records (excluding length prefixes).
  size_t TotalBytes() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<std::vector<uint8_t>> records_;
};

}  // namespace sbr::storage

#endif  // SBR_STORAGE_CHUNK_LOG_H_
