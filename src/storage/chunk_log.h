// The base station's per-sensor append-only log (paper Figure 1): every
// received transmission — base-signal updates and interval records alike —
// is appended as one length-prefixed, CRC32-protected binary record.
// Besides data transmissions the log records DataLoss gaps (chunks that
// never arrived), base-signal resync snapshots, and opaque state
// checkpoints (node or base-station protocol state for crash recovery), so
// reopening a log and replaying it through a fresh decoder reconstructs
// the full approximate history of the sensor, including which parts of it
// are missing.
#ifndef SBR_STORAGE_CHUNK_LOG_H_
#define SBR_STORAGE_CHUNK_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/transmission.h"
#include "util/status.h"

namespace sbr::storage {

/// What one log record holds.
enum class RecordType : uint8_t {
  kTransmission = 0,  ///< one data chunk (serialized Transmission)
  kGap = 1,           ///< N chunks lost for good (payload: u32 count)
  kSnapshot = 2,      ///< base-signal resync (serialized BaseSnapshot)
  kCheckpoint = 3,    ///< opaque recovery state blob (owner-defined format)
};

/// Append-only transmission log. With an empty path the log is purely
/// in-memory; with a path every Append is also written through to disk and
/// Open() recovers all records on restart. Every record is CRC-checked on
/// reload, and recovery never surfaces corruption as data:
///
///  * A torn final record (partial write at crash / power loss) is dropped
///    and the file is truncated back to the last complete record
///    (`dropped_records()`), so later appends stay readable.
///  * A corrupt record in the *middle* of the log is replaced by a
///    one-chunk DataLoss gap marker when its type byte reads as a
///    transmission (any other type is skipped without emitting a slot —
///    snapshots and checkpoints never occupied a chunk of the timeline),
///    and — because later transmissions may depend on base-signal updates
///    the corrupt record carried — every subsequent transmission record is
///    also converted to a gap until the next valid base-signal snapshot
///    re-anchors the stream. Gap and checkpoint records are self-contained
///    and pass through unconverted. `quarantined_records()` counts the
///    conversions; the complete-but-corrupt on-disk bytes are left
///    untouched, so reopening replays the identical recovery.
class ChunkLog {
 public:
  /// In-memory log.
  ChunkLog() = default;

  /// Opens (or creates) a durable log at `path` and loads existing records.
  static StatusOr<ChunkLog> Open(const std::string& path);

  /// Appends one transmission.
  Status Append(const core::Transmission& t);

  /// Records that `chunks` data chunks were lost for good (DataLoss gap).
  Status AppendGap(uint32_t chunks);

  /// Records a base-signal resync snapshot.
  Status AppendSnapshot(const core::BaseSnapshot& snapshot);

  /// Records an opaque recovery checkpoint (the log does not interpret the
  /// payload; CRC framing still detects corruption on reload).
  Status AppendCheckpoint(std::vector<uint8_t> blob);

  /// Number of records (all types).
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  RecordType record_type(size_t index) const { return records_[index].type; }

  /// Decodes record `index` (0-based, append order) as a transmission;
  /// InvalidArgument if the record is a gap, snapshot or checkpoint.
  StatusOr<core::Transmission> Read(size_t index) const;

  /// Decodes a kGap record's lost-chunk count.
  StatusOr<uint32_t> ReadGap(size_t index) const;

  /// Decodes a kSnapshot record.
  StatusOr<core::BaseSnapshot> ReadSnapshot(size_t index) const;

  /// Returns a kCheckpoint record's opaque payload.
  StatusOr<std::vector<uint8_t>> ReadCheckpoint(size_t index) const;

  /// Index of the last kCheckpoint record, or npos if none survived.
  static constexpr size_t kNoCheckpoint = static_cast<size_t>(-1);
  size_t LastCheckpointIndex() const;

  /// Records dropped entirely at Open: the torn tail (truncated mid-write)
  /// plus anything whose framing was unreadable.
  size_t dropped_records() const { return dropped_records_; }

  /// Mid-log records converted to DataLoss gap markers at Open: the
  /// CRC-corrupt record itself plus lineage-broken transmissions up to the
  /// next valid snapshot.
  size_t quarantined_records() const { return quarantined_records_; }

  /// True when recovery ended inside a quarantine run: a corrupt record was
  /// seen and no valid snapshot followed it, so the log's tail cannot carry
  /// further transmissions until a resync snapshot re-anchors the stream.
  bool recovered_lineage_broken() const { return recovered_lineage_broken_; }

  /// Byte span a record occupies on disk, framing included. Offsets are
  /// absolute file positions; for quarantined records the span covers the
  /// original (corrupt) bytes. Meaningful only for durable logs.
  struct DiskSpan {
    size_t offset = 0;
    size_t length = 0;
  };
  DiskSpan RecordDiskSpan(size_t index) const {
    return DiskSpan{records_[index].disk_offset, records_[index].disk_len};
  }

  /// End-of-log file offset (where the next record's framing will land).
  size_t DiskEnd() const { return disk_end_; }

  /// Total bytes across all serialized records (excluding framing).
  size_t TotalBytes() const;

  const std::string& path() const { return path_; }

 private:
  struct Record {
    RecordType type;
    std::vector<uint8_t> payload;
    size_t disk_offset = 0;
    size_t disk_len = 0;
  };

  Status AppendRecord(RecordType type, std::vector<uint8_t> payload);

  std::string path_;
  std::vector<Record> records_;
  size_t dropped_records_ = 0;
  size_t quarantined_records_ = 0;
  bool recovered_lineage_broken_ = false;
  size_t disk_end_ = 0;
};

}  // namespace sbr::storage

#endif  // SBR_STORAGE_CHUNK_LOG_H_
