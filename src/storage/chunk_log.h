// The base station's per-sensor append-only log (paper Figure 1): every
// received transmission — base-signal updates and interval records alike —
// is appended as one length-prefixed, CRC32-protected binary record.
// Besides data transmissions the log records DataLoss gaps (chunks that
// never arrived) and base-signal resync snapshots, so reopening a log and
// replaying it through a fresh decoder reconstructs the full approximate
// history of the sensor, including which parts of it are missing.
#ifndef SBR_STORAGE_CHUNK_LOG_H_
#define SBR_STORAGE_CHUNK_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/transmission.h"
#include "util/status.h"

namespace sbr::storage {

/// What one log record holds.
enum class RecordType : uint8_t {
  kTransmission = 0,  ///< one data chunk (serialized Transmission)
  kGap = 1,           ///< N chunks lost for good (payload: u32 count)
  kSnapshot = 2,      ///< base-signal resync (serialized BaseSnapshot)
};

/// Append-only transmission log. With an empty path the log is purely
/// in-memory; with a path every Append is also written through to disk and
/// Open() recovers all records on restart. Every record is CRC-checked on
/// reload: a torn final record (partial write at crash) or a corrupted
/// record truncates the log at the last good record instead of failing the
/// whole log; `dropped_records()` reports how much was sacrificed.
class ChunkLog {
 public:
  /// In-memory log.
  ChunkLog() = default;

  /// Opens (or creates) a durable log at `path` and loads existing records.
  static StatusOr<ChunkLog> Open(const std::string& path);

  /// Appends one transmission.
  Status Append(const core::Transmission& t);

  /// Records that `chunks` data chunks were lost for good (DataLoss gap).
  Status AppendGap(uint32_t chunks);

  /// Records a base-signal resync snapshot.
  Status AppendSnapshot(const core::BaseSnapshot& snapshot);

  /// Number of records (all types).
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  RecordType record_type(size_t index) const { return records_[index].type; }

  /// Decodes record `index` (0-based, append order) as a transmission;
  /// InvalidArgument if the record is a gap or snapshot.
  StatusOr<core::Transmission> Read(size_t index) const;

  /// Decodes a kGap record's lost-chunk count.
  StatusOr<uint32_t> ReadGap(size_t index) const;

  /// Decodes a kSnapshot record.
  StatusOr<core::BaseSnapshot> ReadSnapshot(size_t index) const;

  /// Records dropped at Open because of a CRC mismatch, parse failure or
  /// torn tail (everything from the first bad record on is discarded).
  size_t dropped_records() const { return dropped_records_; }

  /// Total bytes across all serialized records (excluding framing).
  size_t TotalBytes() const;

  const std::string& path() const { return path_; }

 private:
  struct Record {
    RecordType type;
    std::vector<uint8_t> payload;
  };

  Status AppendRecord(RecordType type, std::vector<uint8_t> payload);

  std::string path_;
  std::vector<Record> records_;
  size_t dropped_records_ = 0;
};

}  // namespace sbr::storage

#endif  // SBR_STORAGE_CHUNK_LOG_H_
