#include "storage/chunk_log.h"

#include <filesystem>
#include <fstream>

#include "util/crc32.h"

namespace sbr::storage {
namespace {

// Log preamble: identifies the format and its version. Version 2 added the
// per-record type byte and CRC32.
constexpr uint32_t kMagic = 0x5342524c;  // "SBRL"
constexpr uint32_t kVersion = 2;

// Validates that a record's payload parses as its declared type.
bool PayloadParses(RecordType type, std::span<const uint8_t> payload) {
  BinaryReader check(payload);
  switch (type) {
    case RecordType::kTransmission:
      return core::Transmission::Deserialize(&check).ok();
    case RecordType::kGap: {
      uint32_t chunks;
      return check.GetU32(&chunks).ok() && check.AtEnd();
    }
    case RecordType::kSnapshot:
      return core::BaseSnapshot::Deserialize(&check).ok();
    case RecordType::kCheckpoint:
      return true;  // opaque owner-defined blob; CRC is the only guard
  }
  return false;
}

// Payload of the gap marker a quarantined transmission is replaced with.
std::vector<uint8_t> OneChunkGapPayload() {
  BinaryWriter writer;
  writer.PutU32(1);
  return writer.TakeBuffer();
}

}  // namespace

StatusOr<ChunkLog> ChunkLog::Open(const std::string& path) {
  ChunkLog log;
  log.path_ = path;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Fresh log: write the preamble.
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::NotFound("cannot create log: " + path);
    BinaryWriter header;
    header.PutU32(kMagic);
    header.PutU32(kVersion);
    out.write(reinterpret_cast<const char*>(header.buffer().data()),
              static_cast<std::streamsize>(header.size()));
    if (!out) return Status::DataLoss("cannot write log header: " + path);
    log.disk_end_ = header.size();
    return log;
  }

  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  BinaryReader reader(bytes);
  uint32_t magic = 0, version = 0;
  SBR_RETURN_IF_ERROR(reader.GetU32(&magic));
  SBR_RETURN_IF_ERROR(reader.GetU32(&version));
  if (magic != kMagic) {
    return Status::DataLoss("bad log magic in " + path);
  }
  if (version != kVersion) {
    return Status::DataLoss("unsupported log version " +
                            std::to_string(version));
  }
  // Record framing: len u32 | type u8 | crc u32 | payload. A record whose
  // framing cannot even be read is a torn tail (crash mid-write): it and
  // anything after it are dropped and the file is truncated back so later
  // appends land on a clean boundary. A record that is *complete* on disk
  // but fails its CRC or does not parse is quarantined in place: replaced
  // by a one-chunk gap if its type byte reads as a transmission (other
  // types never occupied a chunk of the timeline, so emitting a slot for
  // them could fabricate history), and because later transmissions may
  // depend on base-signal updates the corrupt record carried, subsequent
  // transmissions are also converted to gaps until a valid snapshot
  // re-anchors the stream.
  bool lineage_broken = false;
  size_t valid_end = reader.position();
  while (!reader.AtEnd()) {
    const size_t record_offset = reader.position();
    uint32_t len = 0;
    uint8_t type = 0;
    uint32_t crc = 0;
    std::vector<uint8_t> payload;
    if (!reader.GetU32(&len).ok() || !reader.GetU8(&type).ok() ||
        !reader.GetU32(&crc).ok() || !reader.GetRaw(len, &payload).ok()) {
      ++log.dropped_records_;
      break;  // torn tail
    }
    const size_t framed_len = reader.position() - record_offset;
    valid_end = reader.position();
    uint32_t state = Crc32Update(kCrc32Init, std::span(&type, 1));
    state = Crc32Update(state, payload);
    const bool type_ok = type <= static_cast<uint8_t>(RecordType::kCheckpoint);
    const bool intact =
        crc == Crc32Finalize(state) && type_ok &&
        PayloadParses(static_cast<RecordType>(type), payload);
    if (!intact) {
      ++log.quarantined_records_;
      lineage_broken = true;
      if (type == static_cast<uint8_t>(RecordType::kTransmission)) {
        log.records_.push_back(Record{RecordType::kGap, OneChunkGapPayload(),
                                      record_offset, framed_len});
      }
      continue;
    }
    const auto record_type = static_cast<RecordType>(type);
    if (lineage_broken && record_type == RecordType::kTransmission) {
      // Valid on its own, but it may reference base slots whose updates
      // were lost with the corrupt record — surfacing it could decode to
      // garbage. One record == one chunk, so a one-chunk gap keeps the
      // timeline aligned.
      ++log.quarantined_records_;
      log.records_.push_back(Record{RecordType::kGap, OneChunkGapPayload(),
                                    record_offset, framed_len});
      continue;
    }
    if (record_type == RecordType::kSnapshot) lineage_broken = false;
    log.records_.push_back(Record{record_type, std::move(payload),
                                  record_offset, framed_len});
  }
  log.recovered_lineage_broken_ = lineage_broken;
  log.disk_end_ = valid_end;
  if (log.dropped_records_ > 0 && valid_end < bytes.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, valid_end, ec);
    if (ec) return Status::DataLoss("cannot truncate torn tail: " + path);
  }
  return log;
}

Status ChunkLog::AppendRecord(RecordType type, std::vector<uint8_t> payload) {
  BinaryWriter framed;
  framed.PutU32(static_cast<uint32_t>(payload.size()));
  const uint8_t type_byte = static_cast<uint8_t>(type);
  framed.PutU8(type_byte);
  uint32_t state = Crc32Update(kCrc32Init, std::span(&type_byte, 1));
  state = Crc32Update(state, payload);
  framed.PutU32(Crc32Finalize(state));
  framed.PutRaw(payload);
  if (!path_.empty()) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out) return Status::NotFound("cannot append to log: " + path_);
    out.write(reinterpret_cast<const char*>(framed.buffer().data()),
              static_cast<std::streamsize>(framed.size()));
    out.flush();
    if (!out) return Status::DataLoss("write failed: " + path_);
  }
  records_.push_back(Record{type, std::move(payload), disk_end_,
                            framed.size()});
  disk_end_ += framed.size();
  return Status::Ok();
}

Status ChunkLog::Append(const core::Transmission& t) {
  BinaryWriter writer;
  t.Serialize(&writer);
  return AppendRecord(RecordType::kTransmission, writer.TakeBuffer());
}

Status ChunkLog::AppendGap(uint32_t chunks) {
  BinaryWriter writer;
  writer.PutU32(chunks);
  return AppendRecord(RecordType::kGap, writer.TakeBuffer());
}

Status ChunkLog::AppendSnapshot(const core::BaseSnapshot& snapshot) {
  BinaryWriter writer;
  snapshot.Serialize(&writer);
  return AppendRecord(RecordType::kSnapshot, writer.TakeBuffer());
}

Status ChunkLog::AppendCheckpoint(std::vector<uint8_t> blob) {
  return AppendRecord(RecordType::kCheckpoint, std::move(blob));
}

StatusOr<core::Transmission> ChunkLog::Read(size_t index) const {
  if (index >= records_.size()) {
    return Status::OutOfRange("record " + std::to_string(index) + " of " +
                              std::to_string(records_.size()));
  }
  if (records_[index].type != RecordType::kTransmission) {
    return Status::InvalidArgument("record " + std::to_string(index) +
                                   " is not a transmission");
  }
  BinaryReader reader(records_[index].payload);
  return core::Transmission::Deserialize(&reader);
}

StatusOr<uint32_t> ChunkLog::ReadGap(size_t index) const {
  if (index >= records_.size()) {
    return Status::OutOfRange("record " + std::to_string(index) + " of " +
                              std::to_string(records_.size()));
  }
  if (records_[index].type != RecordType::kGap) {
    return Status::InvalidArgument("record " + std::to_string(index) +
                                   " is not a gap marker");
  }
  BinaryReader reader(records_[index].payload);
  uint32_t chunks;
  SBR_RETURN_IF_ERROR(reader.GetU32(&chunks));
  return chunks;
}

StatusOr<core::BaseSnapshot> ChunkLog::ReadSnapshot(size_t index) const {
  if (index >= records_.size()) {
    return Status::OutOfRange("record " + std::to_string(index) + " of " +
                              std::to_string(records_.size()));
  }
  if (records_[index].type != RecordType::kSnapshot) {
    return Status::InvalidArgument("record " + std::to_string(index) +
                                   " is not a snapshot");
  }
  BinaryReader reader(records_[index].payload);
  return core::BaseSnapshot::Deserialize(&reader);
}

StatusOr<std::vector<uint8_t>> ChunkLog::ReadCheckpoint(size_t index) const {
  if (index >= records_.size()) {
    return Status::OutOfRange("record " + std::to_string(index) + " of " +
                              std::to_string(records_.size()));
  }
  if (records_[index].type != RecordType::kCheckpoint) {
    return Status::InvalidArgument("record " + std::to_string(index) +
                                   " is not a checkpoint");
  }
  return records_[index].payload;
}

size_t ChunkLog::LastCheckpointIndex() const {
  for (size_t i = records_.size(); i-- > 0;) {
    if (records_[i].type == RecordType::kCheckpoint) return i;
  }
  return kNoCheckpoint;
}

size_t ChunkLog::TotalBytes() const {
  size_t total = 0;
  for (const auto& r : records_) total += r.payload.size();
  return total;
}

}  // namespace sbr::storage
