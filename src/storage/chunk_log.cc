#include "storage/chunk_log.h"

#include <fstream>

#include "util/crc32.h"

namespace sbr::storage {
namespace {

// Log preamble: identifies the format and its version. Version 2 added the
// per-record type byte and CRC32.
constexpr uint32_t kMagic = 0x5342524c;  // "SBRL"
constexpr uint32_t kVersion = 2;

// Validates that a record's payload parses as its declared type.
bool PayloadParses(RecordType type, std::span<const uint8_t> payload) {
  BinaryReader check(payload);
  switch (type) {
    case RecordType::kTransmission:
      return core::Transmission::Deserialize(&check).ok();
    case RecordType::kGap: {
      uint32_t chunks;
      return check.GetU32(&chunks).ok() && check.AtEnd();
    }
    case RecordType::kSnapshot:
      return core::BaseSnapshot::Deserialize(&check).ok();
  }
  return false;
}

}  // namespace

StatusOr<ChunkLog> ChunkLog::Open(const std::string& path) {
  ChunkLog log;
  log.path_ = path;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Fresh log: write the preamble.
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::NotFound("cannot create log: " + path);
    BinaryWriter header;
    header.PutU32(kMagic);
    header.PutU32(kVersion);
    out.write(reinterpret_cast<const char*>(header.buffer().data()),
              static_cast<std::streamsize>(header.size()));
    if (!out) return Status::DataLoss("cannot write log header: " + path);
    return log;
  }

  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  BinaryReader reader(bytes);
  uint32_t magic = 0, version = 0;
  SBR_RETURN_IF_ERROR(reader.GetU32(&magic));
  SBR_RETURN_IF_ERROR(reader.GetU32(&version));
  if (magic != kMagic) {
    return Status::DataLoss("bad log magic in " + path);
  }
  if (version != kVersion) {
    return Status::DataLoss("unsupported log version " +
                            std::to_string(version));
  }
  while (!reader.AtEnd()) {
    // Record framing: len u32 | type u8 | crc u32 | payload. A record that
    // is truncated, fails its CRC or does not parse truncates the log here:
    // everything after it is unusable (records are stateful in order).
    uint32_t len = 0;
    uint8_t type = 0;
    uint32_t crc = 0;
    std::vector<uint8_t> payload;
    if (!reader.GetU32(&len).ok() || !reader.GetU8(&type).ok() ||
        !reader.GetU32(&crc).ok() || !reader.GetRaw(len, &payload).ok()) {
      ++log.dropped_records_;
      break;  // torn tail
    }
    uint32_t state = Crc32Update(kCrc32Init, std::span(&type, 1));
    state = Crc32Update(state, payload);
    if (crc != Crc32Finalize(state) ||
        type > static_cast<uint8_t>(RecordType::kSnapshot) ||
        !PayloadParses(static_cast<RecordType>(type), payload)) {
      // Corrupted record: count it plus everything behind it, then stop.
      ++log.dropped_records_;
      while (!reader.AtEnd()) {
        uint32_t skip_len = 0;
        std::vector<uint8_t> skipped;
        uint8_t t8;
        uint32_t c32;
        if (!reader.GetU32(&skip_len).ok() || !reader.GetU8(&t8).ok() ||
            !reader.GetU32(&c32).ok() ||
            !reader.GetRaw(skip_len, &skipped).ok()) {
          break;
        }
        ++log.dropped_records_;
      }
      break;
    }
    log.records_.push_back(
        Record{static_cast<RecordType>(type), std::move(payload)});
  }
  return log;
}

Status ChunkLog::AppendRecord(RecordType type, std::vector<uint8_t> payload) {
  if (!path_.empty()) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out) return Status::NotFound("cannot append to log: " + path_);
    BinaryWriter framed;
    framed.PutU32(static_cast<uint32_t>(payload.size()));
    const uint8_t type_byte = static_cast<uint8_t>(type);
    framed.PutU8(type_byte);
    uint32_t state = Crc32Update(kCrc32Init, std::span(&type_byte, 1));
    state = Crc32Update(state, payload);
    framed.PutU32(Crc32Finalize(state));
    framed.PutRaw(payload);
    out.write(reinterpret_cast<const char*>(framed.buffer().data()),
              static_cast<std::streamsize>(framed.size()));
    out.flush();
    if (!out) return Status::DataLoss("write failed: " + path_);
  }
  records_.push_back(Record{type, std::move(payload)});
  return Status::Ok();
}

Status ChunkLog::Append(const core::Transmission& t) {
  BinaryWriter writer;
  t.Serialize(&writer);
  return AppendRecord(RecordType::kTransmission, writer.TakeBuffer());
}

Status ChunkLog::AppendGap(uint32_t chunks) {
  BinaryWriter writer;
  writer.PutU32(chunks);
  return AppendRecord(RecordType::kGap, writer.TakeBuffer());
}

Status ChunkLog::AppendSnapshot(const core::BaseSnapshot& snapshot) {
  BinaryWriter writer;
  snapshot.Serialize(&writer);
  return AppendRecord(RecordType::kSnapshot, writer.TakeBuffer());
}

StatusOr<core::Transmission> ChunkLog::Read(size_t index) const {
  if (index >= records_.size()) {
    return Status::OutOfRange("record " + std::to_string(index) + " of " +
                              std::to_string(records_.size()));
  }
  if (records_[index].type != RecordType::kTransmission) {
    return Status::InvalidArgument("record " + std::to_string(index) +
                                   " is not a transmission");
  }
  BinaryReader reader(records_[index].payload);
  return core::Transmission::Deserialize(&reader);
}

StatusOr<uint32_t> ChunkLog::ReadGap(size_t index) const {
  if (index >= records_.size()) {
    return Status::OutOfRange("record " + std::to_string(index) + " of " +
                              std::to_string(records_.size()));
  }
  if (records_[index].type != RecordType::kGap) {
    return Status::InvalidArgument("record " + std::to_string(index) +
                                   " is not a gap marker");
  }
  BinaryReader reader(records_[index].payload);
  uint32_t chunks;
  SBR_RETURN_IF_ERROR(reader.GetU32(&chunks));
  return chunks;
}

StatusOr<core::BaseSnapshot> ChunkLog::ReadSnapshot(size_t index) const {
  if (index >= records_.size()) {
    return Status::OutOfRange("record " + std::to_string(index) + " of " +
                              std::to_string(records_.size()));
  }
  if (records_[index].type != RecordType::kSnapshot) {
    return Status::InvalidArgument("record " + std::to_string(index) +
                                   " is not a snapshot");
  }
  BinaryReader reader(records_[index].payload);
  return core::BaseSnapshot::Deserialize(&reader);
}

size_t ChunkLog::TotalBytes() const {
  size_t total = 0;
  for (const auto& r : records_) total += r.payload.size();
  return total;
}

}  // namespace sbr::storage
