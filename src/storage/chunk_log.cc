#include "storage/chunk_log.h"

#include <fstream>

namespace sbr::storage {
namespace {

// Log preamble: identifies the format and its version.
constexpr uint32_t kMagic = 0x5342524c;  // "SBRL"
constexpr uint32_t kVersion = 1;

}  // namespace

StatusOr<ChunkLog> ChunkLog::Open(const std::string& path) {
  ChunkLog log;
  log.path_ = path;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Fresh log: write the preamble.
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::NotFound("cannot create log: " + path);
    BinaryWriter header;
    header.PutU32(kMagic);
    header.PutU32(kVersion);
    out.write(reinterpret_cast<const char*>(header.buffer().data()),
              static_cast<std::streamsize>(header.size()));
    if (!out) return Status::DataLoss("cannot write log header: " + path);
    return log;
  }

  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  BinaryReader reader(bytes);
  uint32_t magic = 0, version = 0;
  SBR_RETURN_IF_ERROR(reader.GetU32(&magic));
  SBR_RETURN_IF_ERROR(reader.GetU32(&version));
  if (magic != kMagic) {
    return Status::DataLoss("bad log magic in " + path);
  }
  if (version != kVersion) {
    return Status::DataLoss("unsupported log version " +
                            std::to_string(version));
  }
  while (!reader.AtEnd()) {
    uint32_t len = 0;
    if (!reader.GetU32(&len).ok() || reader.remaining() < len) {
      break;  // torn final record: drop it
    }
    std::vector<uint8_t> record(len);
    for (uint32_t i = 0; i < len; ++i) {
      uint8_t b;
      SBR_RETURN_IF_ERROR(reader.GetU8(&b));
      record[i] = b;
    }
    // Validate that the record parses before accepting it.
    BinaryReader check(record);
    if (!core::Transmission::Deserialize(&check).ok()) break;
    log.records_.push_back(std::move(record));
  }
  return log;
}

Status ChunkLog::Append(const core::Transmission& t) {
  BinaryWriter writer;
  t.Serialize(&writer);
  std::vector<uint8_t> record = writer.TakeBuffer();

  if (!path_.empty()) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out) return Status::NotFound("cannot append to log: " + path_);
    BinaryWriter framed;
    framed.PutU32(static_cast<uint32_t>(record.size()));
    out.write(reinterpret_cast<const char*>(framed.buffer().data()),
              static_cast<std::streamsize>(framed.size()));
    out.write(reinterpret_cast<const char*>(record.data()),
              static_cast<std::streamsize>(record.size()));
    out.flush();
    if (!out) return Status::DataLoss("write failed: " + path_);
  }
  records_.push_back(std::move(record));
  return Status::Ok();
}

StatusOr<core::Transmission> ChunkLog::Read(size_t index) const {
  if (index >= records_.size()) {
    return Status::OutOfRange("record " + std::to_string(index) +
                              " of " + std::to_string(records_.size()));
  }
  BinaryReader reader(records_[index]);
  return core::Transmission::Deserialize(&reader);
}

size_t ChunkLog::TotalBytes() const {
  size_t total = 0;
  for (const auto& r : records_) total += r.size();
  return total;
}

}  // namespace sbr::storage
