// HistoryStore: the base station's queryable view of one sensor's
// approximate history. Ingested transmissions are decoded in arrival
// order (the decoder's base-signal mirror makes order significant) and the
// reconstructed chunks are retained, so any time range of any quantity
// can be served — the paper's "reconstruct the series Y_i at any given
// point in the past". Chunks the transmission protocol declared lost are
// kept as explicit gaps: queries touching them return DataLoss instead of
// silently fabricated values.
#ifndef SBR_STORAGE_HISTORY_STORE_H_
#define SBR_STORAGE_HISTORY_STORE_H_

#include <memory>
#include <vector>

#include "core/decoder.h"
#include "core/transmission.h"
#include "storage/chunk_log.h"
#include "storage/moment_index.h"
#include "storage/query_engine.h"
#include "util/status.h"

namespace sbr::storage {

/// Per-sensor decoded history with range queries and explicit loss gaps.
class HistoryStore {
 public:
  /// `m_base` must match the sensor's encoder configuration.
  explicit HistoryStore(size_t m_base)
      : decoder_(core::DecoderOptions{m_base}) {}

  /// Rebuilds a store by replaying a chunk log from the beginning
  /// (transmissions, gap markers and snapshots alike).
  static StatusOr<HistoryStore> FromLog(const ChunkLog& log, size_t m_base);

  /// Decodes and retains the next transmission.
  Status Ingest(const core::Transmission& t);

  /// Records `chunks` lost chunks: the timeline advances but the values
  /// are gone; queries over them report DataLoss.
  void MarkGap(size_t chunks = 1);

  /// Re-establishes the decoder's base-signal mirror from a resync
  /// snapshot.
  Status ApplySnapshot(const core::BaseSnapshot& snapshot);

  /// Number of chunks on the timeline (decoded + gaps).
  size_t num_chunks() const { return chunks_.size(); }
  /// Chunks recorded as lost.
  size_t num_gaps() const { return num_gaps_; }
  /// True if chunk `c` is a loss gap.
  bool IsGap(size_t c) const { return chunks_[c] == nullptr; }
  /// Signals per chunk (0 until the first ingest).
  size_t num_signals() const { return num_signals_; }
  /// Values per signal per chunk.
  size_t chunk_len() const { return chunk_len_; }
  /// Total reconstructed timeline length per signal.
  size_t history_len() const { return chunks_.size() * chunk_len_; }

  /// Reconstructed values of `signal` over the global time range
  /// [t0, t1) (t measured in samples since the first transmission).
  /// Returns DataLoss if the range touches a lost chunk.
  StatusOr<std::vector<double>> QueryRange(size_t signal, size_t t0,
                                           size_t t1) const;

  /// Single reconstructed value.
  StatusOr<double> QueryPoint(size_t signal, size_t t) const;

  /// Exact aggregates of the reconstructed series over [t0, t1) — the
  /// materialized-side counterpart of CompressedHistory::Aggregate.
  /// Fully covered chunks are answered from per-chunk moment summaries
  /// folded at ingest (O(log #chunks) via the hierarchical index); only
  /// the two partial boundary chunks scan samples. Same gap semantics:
  /// touching a lost chunk is DataLoss, abutting one succeeds.
  StatusOr<AggregateResult> AggregateExact(size_t signal, size_t t0,
                                           size_t t1) const;

  /// Whole reconstructed chunk c as a num_signals x chunk_len matrix;
  /// DataLoss if the chunk is a gap.
  StatusOr<linalg::Matrix> Chunk(size_t c) const;

 private:
  core::SbrDecoder decoder_;
  size_t num_signals_ = 0;
  size_t chunk_len_ = 0;
  size_t num_gaps_ = 0;
  /// chunks_[c] is the flat concatenated reconstruction of chunk c; a
  /// nullptr marks a loss gap. Payloads are immutable once decoded and
  /// shared between copies, so copying a store (the QueryService snapshot
  /// publish path) costs O(chunks) pointer copies, not O(samples).
  std::vector<std::shared_ptr<const std::vector<double>>> chunks_;
  /// One hierarchical moment index per signal over the decoded chunks
  /// (created at the first ingest; earlier gap chunks are backfilled).
  /// Sealed blocks are shared across store copies.
  std::vector<MomentIndex> index_;

  /// Appends chunk summaries (or gap leaves for nullptr) to the index.
  void AppendIndexLeaves(const std::vector<double>* values);
};

}  // namespace sbr::storage

#endif  // SBR_STORAGE_HISTORY_STORE_H_
