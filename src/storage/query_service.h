// QueryService: the base station's concurrent, multi-client read
// front-end over per-sensor histories. Readers are served from immutable
// epoch snapshots published RCU-style — a std::shared_ptr to a frozen
// CompressedHistory + HistoryStore pair, swapped atomically at
// chunk-ingest boundaries — so queries never block ingest and never
// observe a half-ingested chunk. Both stores share their chunk payloads
// by shared_ptr, so freezing an epoch costs O(chunks) pointer copies,
// not O(samples).
//
// Concurrency contract:
//  - Writer side (Ingest / MarkGap / ApplySnapshot): one logical writer
//    per service at a time — the BaseStation ingest path, which the sim
//    engine already serializes behind its station mutex. Writer calls for
//    *different* sensors are still serialized by the service's writer
//    mutex; this keeps sensor creation and epoch accounting trivial.
//  - Reader side (Snapshot / Aggregate / Reconstruct / Point /
//    AggregateBatch): any number of threads, any time. A reader acquires
//    the per-sensor published pointer with one atomic load and then works
//    entirely on immutable state.
//
// Every published snapshot carries the epoch (a per-sensor monotone
// publish counter), so an answer is always attributable to one exact
// prefix of the ingest stream — the property the differential oracle and
// the TSan concurrency suite pin.
//
// The sharded aggregate cache keys entries by (sensor, epoch, signal,
// range); publishing a new epoch invalidates by construction (stale
// epochs can never be looked up again) and capacity-bounded LRU eviction
// reclaims their slots (evictions and resident entries are counted).
#ifndef SBR_STORAGE_QUERY_SERVICE_H_
#define SBR_STORAGE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/transmission.h"
#include "storage/chunk_log.h"
#include "storage/history_store.h"
#include "storage/query_engine.h"
#include "util/status.h"

namespace sbr::storage {

/// One frozen epoch of one sensor's history: the compressed interval view
/// (aggregates in O(intervals)) and the materialized view (exact
/// range reconstruction), advanced in lockstep chunk for chunk.
struct SensorSnapshot {
  /// Monotone per-sensor publish counter; epoch e was published after
  /// exactly e writer mutations (ingests, gaps, snapshots) of the sensor.
  uint64_t epoch = 0;
  CompressedHistory compressed;
  HistoryStore history;

  SensorSnapshot(uint64_t e, const CompressedHistory& c,
                 const HistoryStore& h)
      : epoch(e), compressed(c), history(h) {}
};

struct QueryServiceOptions {
  /// Must match the sensors' encoder configuration.
  size_t m_base = 0;
  /// Aggregate-cache shards (rounded up to a power of two; 0 disables the
  /// cache entirely).
  size_t cache_shards = 8;
  /// Cached aggregates per shard; LRU eviction beyond this.
  size_t cache_capacity_per_shard = 512;
  /// Compressed-domain acceleration for every sensor's builder (the
  /// hierarchical moment index + base RMQ; disable for the legacy
  /// interval-scan reference path).
  IndexOptions index;
};

/// Service-level counters, mirrored into obs metrics when enabled; kept
/// as plain atomics too so the noobs build can still assert on them.
struct QueryServiceCounters {
  uint64_t queries = 0;      ///< reader-side calls answered (any status)
  uint64_t cache_hits = 0;   ///< aggregate answers served from the cache
  uint64_t cache_misses = 0; ///< aggregate answers computed from a snapshot
  uint64_t cache_evictions = 0; ///< LRU victims dropped from the cache
  uint64_t cache_resident = 0;  ///< aggregate entries currently cached
  uint64_t dataloss = 0;     ///< answers that reported DataLoss
  uint64_t publishes = 0;    ///< epoch snapshots published (all sensors)
};

/// Concurrent multi-sensor query front-end with snapshot isolation.
class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options);

  // ------------------------------------------------------- writer side
  /// Decodes + indexes the next transmission of `sensor_id` and publishes
  /// a new epoch. If the materialized ingest succeeds but the compressed
  /// index rejects the chunk, the compressed view records a gap in its
  /// place so the two timelines stay aligned (counted in obs).
  Status Ingest(uint32_t sensor_id, const core::Transmission& t);

  /// Records `chunks` lost chunks on both views and publishes.
  Status MarkGap(uint32_t sensor_id, size_t chunks = 1);

  /// Re-anchors both views' base-signal mirrors from a resync snapshot
  /// and publishes.
  Status ApplySnapshot(uint32_t sensor_id,
                       const core::BaseSnapshot& snapshot);

  // ------------------------------------------------------- reader side
  /// The sensor's latest published epoch snapshot (one atomic load);
  /// nullptr if the sensor has never been ingested.
  std::shared_ptr<const SensorSnapshot> Snapshot(uint32_t sensor_id) const;

  /// Compressed-domain aggregates of `signal` over [t0, t1), served from
  /// the aggregate cache when the (sensor, epoch, signal, range) entry is
  /// warm. NotFound for unknown sensors; DataLoss for ranges touching
  /// lost chunks; OutOfRange for malformed ranges.
  StatusOr<AggregateResult> Aggregate(uint32_t sensor_id, size_t signal,
                                      size_t t0, size_t t1) const;

  /// Materialized range reconstruction from the same snapshot mechanism.
  StatusOr<std::vector<double>> Reconstruct(uint32_t sensor_id,
                                            size_t signal, size_t t0,
                                            size_t t1) const;

  /// Single-sample point query (compressed domain).
  StatusOr<double> Point(uint32_t sensor_id, size_t signal, size_t t) const;

  /// One aggregate range request of a batch.
  struct RangeQuery {
    size_t signal = 0;
    size_t t0 = 0;
    size_t t1 = 0;
  };

  /// Answers every range of a batch against ONE epoch snapshot (mutually
  /// consistent answers). Per-query failures — DataLoss over gaps above
  /// all — stay per-query instead of failing the whole batch; each
  /// DataLoss answer is counted (obs `query.dataloss`).
  std::vector<StatusOr<AggregateResult>> AggregateBatch(
      uint32_t sensor_id, const std::vector<RangeQuery>& ranges) const;

  /// Latest published epoch of the sensor (0 if unknown).
  uint64_t epoch(uint32_t sensor_id) const;

  /// Sensors with at least one published epoch.
  size_t num_sensors() const;

  /// Point-in-time merged counters.
  QueryServiceCounters counters() const;

 private:
  struct PerSensor {
    /// Writer-owned mutable builders; copied into each published epoch.
    CompressedHistory builder_compressed;
    HistoryStore builder_history;
    uint64_t epoch = 0;
    /// The RCU slot readers load.
    std::atomic<std::shared_ptr<const SensorSnapshot>> published;

    PerSensor(size_t m_base, IndexOptions index)
        : builder_compressed(m_base, index), builder_history(m_base) {}
  };

  struct CacheKey {
    uint32_t sensor = 0;
    uint64_t epoch = 0;
    uint64_t signal = 0;
    uint64_t t0 = 0;
    uint64_t t1 = 0;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const;
  };
  struct CacheShard {
    mutable std::mutex mu;
    /// Recency list: front = LRU victim, back = most recently used.
    std::list<CacheKey> lru;
    struct Entry {
      AggregateResult value;
      std::list<CacheKey>::iterator pos;  ///< this entry's lru node
    };
    std::unordered_map<CacheKey, Entry, CacheKeyHash> entries;
  };

  /// Writer path: looks up or creates the sensor's builder state.
  PerSensor* GetOrCreateLocked(uint32_t sensor_id);
  /// Freezes the builders into a new epoch and swaps the RCU slot.
  void Publish(PerSensor* s);
  /// Aggregate answered on an explicit snapshot, consulting the cache.
  StatusOr<AggregateResult> AggregateOn(uint32_t sensor_id,
                                        const SensorSnapshot& snap,
                                        size_t signal, size_t t0,
                                        size_t t1) const;
  CacheShard* ShardFor(const CacheKey& key) const;
  void CountStatus(const Status& status) const;

  /// Reader path: resolves the sensor's slot (brief map_mu_ hold only).
  const PerSensor* Find(uint32_t sensor_id) const;

  QueryServiceOptions options_;

  /// Guards only the sensor map's *structure* (find/insert); held for
  /// nanoseconds on either side, so readers never wait out a decode.
  mutable std::mutex map_mu_;
  std::map<uint32_t, std::unique_ptr<PerSensor>> sensors_;

  /// Serializes writer mutations (builder updates + publish). Readers
  /// never take it: they only load the published atomic shared_ptr.
  std::mutex writer_mu_;

  /// Sharded aggregate cache; empty when cache_shards == 0.
  mutable std::vector<std::unique_ptr<CacheShard>> cache_;

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
  mutable std::atomic<uint64_t> cache_evictions_{0};
  mutable std::atomic<uint64_t> cache_resident_{0};
  mutable std::atomic<uint64_t> dataloss_{0};
  std::atomic<uint64_t> publishes_{0};
};

/// Replays a chunk log into `service` as sensor `sensor_id`, record by
/// record (transmissions, gap markers, snapshots; checkpoints skipped).
/// Log read errors propagate; a transmission the service rejects degrades
/// to a service-side gap so the timeline stays aligned with the log.
Status ReplayLog(const ChunkLog& log, uint32_t sensor_id,
                 QueryService* service);

}  // namespace sbr::storage

#endif  // SBR_STORAGE_QUERY_SERVICE_H_
