#include "storage/query_service.h"

#include <bit>
#include <utility>

#include "obs/metrics.h"

namespace sbr::storage {
namespace {

// splitmix64 finalizer: cheap, well-distributed mixing for cache keys.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

size_t QueryService::CacheKeyHash::operator()(const CacheKey& k) const {
  uint64_t h = Mix(static_cast<uint64_t>(k.sensor) ^ (k.epoch << 32));
  h = Mix(h ^ k.signal);
  h = Mix(h ^ k.t0);
  h = Mix(h ^ k.t1);
  return static_cast<size_t>(h);
}

QueryService::QueryService(QueryServiceOptions options)
    : options_(options) {
  if (options_.cache_shards > 0 &&
      options_.cache_capacity_per_shard > 0) {
    const size_t shards = std::bit_ceil(options_.cache_shards);
    cache_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      cache_.push_back(std::make_unique<CacheShard>());
    }
  }
}

QueryService::PerSensor* QueryService::GetOrCreateLocked(
    uint32_t sensor_id) {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = sensors_.find(sensor_id);
  if (it != sensors_.end()) return it->second.get();
  auto [pos, inserted] = sensors_.emplace(
      sensor_id,
      std::make_unique<PerSensor>(options_.m_base, options_.index));
  (void)inserted;
  return pos->second.get();
}

const QueryService::PerSensor* QueryService::Find(
    uint32_t sensor_id) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = sensors_.find(sensor_id);
  return it == sensors_.end() ? nullptr : it->second.get();
}

void QueryService::Publish(PerSensor* s) {
  ++s->epoch;
  auto snap = std::make_shared<const SensorSnapshot>(
      s->epoch, s->builder_compressed, s->builder_history);
  s->published.store(std::move(snap));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  SBR_OBS_COUNT("query.publishes", 1);
  SBR_OBS_GAUGE_SET("query.snapshot.epoch",
                    static_cast<int64_t>(s->epoch));
}

Status QueryService::Ingest(uint32_t sensor_id,
                            const core::Transmission& t) {
  SBR_OBS_TIMER(ingest_timer, "query.publish_us");
  std::lock_guard<std::mutex> wl(writer_mu_);
  PerSensor* s = GetOrCreateLocked(sensor_id);
  // The materialized ingest is the gate: if the chunk cannot be decoded,
  // neither timeline advances and the caller sees the error.
  SBR_RETURN_IF_ERROR(s->builder_history.Ingest(t));
  // The compressed index may still reject what the decoder accepted
  // (it is stricter about base geometry). Record a gap in its place so
  // the two views keep identical chunk numbering; aggregates over the
  // chunk then answer DataLoss while reconstruction still works.
  if (Status compressed = s->builder_compressed.Ingest(t);
      !compressed.ok()) {
    s->builder_compressed.MarkGap(1);
    SBR_OBS_COUNT("query.compressed_index_gaps", 1);
  }
  Publish(s);
  return Status::Ok();
}

Status QueryService::MarkGap(uint32_t sensor_id, size_t chunks) {
  std::lock_guard<std::mutex> wl(writer_mu_);
  PerSensor* s = GetOrCreateLocked(sensor_id);
  s->builder_history.MarkGap(chunks);
  s->builder_compressed.MarkGap(chunks);
  Publish(s);
  return Status::Ok();
}

Status QueryService::ApplySnapshot(uint32_t sensor_id,
                                   const core::BaseSnapshot& snapshot) {
  std::lock_guard<std::mutex> wl(writer_mu_);
  PerSensor* s = GetOrCreateLocked(sensor_id);
  SBR_RETURN_IF_ERROR(s->builder_history.ApplySnapshot(snapshot));
  // A compressed-side rejection leaves its mirror stale; subsequent
  // compressed ingests will fail their geometry checks and turn into
  // index gaps, so readers stay safe (DataLoss, never garbage).
  if (Status compressed = s->builder_compressed.ApplySnapshot(snapshot);
      !compressed.ok()) {
    SBR_OBS_COUNT("query.compressed_snapshot_rejects", 1);
  }
  Publish(s);
  return Status::Ok();
}

std::shared_ptr<const SensorSnapshot> QueryService::Snapshot(
    uint32_t sensor_id) const {
  const PerSensor* s = Find(sensor_id);
  if (s == nullptr) return nullptr;
  return s->published.load();
}

QueryService::CacheShard* QueryService::ShardFor(
    const CacheKey& key) const {
  if (cache_.empty()) return nullptr;
  const size_t idx = CacheKeyHash()(key) & (cache_.size() - 1);
  return cache_[idx].get();
}

void QueryService::CountStatus(const Status& status) const {
  if (status.code() == StatusCode::kDataLoss) {
    dataloss_.fetch_add(1, std::memory_order_relaxed);
    SBR_OBS_COUNT("query.dataloss", 1);
  }
}

StatusOr<AggregateResult> QueryService::AggregateOn(
    uint32_t sensor_id, const SensorSnapshot& snap, size_t signal,
    size_t t0, size_t t1) const {
  const CacheKey key{sensor_id, snap.epoch, signal, t0, t1};
  CacheShard* shard = ShardFor(key);
  if (shard != nullptr) {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->entries.find(key);
    if (it != shard->entries.end()) {
      // LRU touch: move this entry's recency node to the back.
      shard->lru.splice(shard->lru.end(), shard->lru, it->second.pos);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      SBR_OBS_COUNT("query.cache.hits", 1);
      return it->second.value;
    }
  }
  auto result = snap.compressed.Aggregate(signal, t0, t1);
  if (shard != nullptr) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    SBR_OBS_COUNT("query.cache.misses", 1);
  }
  if (!result.ok()) {
    CountStatus(result.status());
    return result;
  }
  if (shard != nullptr) {
    uint64_t evicted = 0;
    bool inserted = false;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      auto [it, fresh] = shard->entries.try_emplace(key);
      inserted = fresh;
      if (fresh) {
        shard->lru.push_back(key);
        it->second.value = *result;
        it->second.pos = std::prev(shard->lru.end());
        while (shard->entries.size() > options_.cache_capacity_per_shard) {
          shard->entries.erase(shard->lru.front());
          shard->lru.pop_front();
          ++evicted;
        }
      }
    }
    // Counter updates outside the shard lock. The resident gauge applies
    // this call's net delta atomically (modular fetch_add carries the
    // negative case), so concurrent shards never lose an update.
    if (inserted || evicted > 0) {
      const int64_t delta =
          (inserted ? 1 : 0) - static_cast<int64_t>(evicted);
      const uint64_t resident =
          cache_resident_.fetch_add(static_cast<uint64_t>(delta),
                                    std::memory_order_relaxed) +
          static_cast<uint64_t>(delta);
      if (evicted > 0) {
        cache_evictions_.fetch_add(evicted, std::memory_order_relaxed);
        SBR_OBS_COUNT("query.cache.evictions", evicted);
      }
      SBR_OBS_GAUGE_SET("query.cache.resident",
                        static_cast<int64_t>(resident));
    }
  }
  return result;
}

StatusOr<AggregateResult> QueryService::Aggregate(uint32_t sensor_id,
                                                  size_t signal, size_t t0,
                                                  size_t t1) const {
  SBR_OBS_TIMER(agg_timer, "query.aggregate_us");
  queries_.fetch_add(1, std::memory_order_relaxed);
  auto snap = Snapshot(sensor_id);
  if (snap == nullptr) {
    return Status::NotFound("sensor " + std::to_string(sensor_id));
  }
  return AggregateOn(sensor_id, *snap, signal, t0, t1);
}

StatusOr<std::vector<double>> QueryService::Reconstruct(
    uint32_t sensor_id, size_t signal, size_t t0, size_t t1) const {
  SBR_OBS_TIMER(rec_timer, "query.reconstruct_us");
  queries_.fetch_add(1, std::memory_order_relaxed);
  auto snap = Snapshot(sensor_id);
  if (snap == nullptr) {
    return Status::NotFound("sensor " + std::to_string(sensor_id));
  }
  auto range = snap->history.QueryRange(signal, t0, t1);
  if (!range.ok()) CountStatus(range.status());
  return range;
}

StatusOr<double> QueryService::Point(uint32_t sensor_id, size_t signal,
                                     size_t t) const {
  SBR_OBS_TIMER(point_timer, "query.point_us");
  queries_.fetch_add(1, std::memory_order_relaxed);
  auto snap = Snapshot(sensor_id);
  if (snap == nullptr) {
    return Status::NotFound("sensor " + std::to_string(sensor_id));
  }
  auto value = snap->compressed.Value(signal, t);
  if (!value.ok()) CountStatus(value.status());
  return value;
}

std::vector<StatusOr<AggregateResult>> QueryService::AggregateBatch(
    uint32_t sensor_id, const std::vector<RangeQuery>& ranges) const {
  SBR_OBS_TIMER(batch_timer, "query.batch_us");
  std::vector<StatusOr<AggregateResult>> out;
  out.reserve(ranges.size());
  auto snap = Snapshot(sensor_id);
  for (const RangeQuery& q : ranges) {
    queries_.fetch_add(1, std::memory_order_relaxed);
    if (snap == nullptr) {
      out.emplace_back(
          Status::NotFound("sensor " + std::to_string(sensor_id)));
      continue;
    }
    out.emplace_back(AggregateOn(sensor_id, *snap, q.signal, q.t0, q.t1));
  }
  return out;
}

uint64_t QueryService::epoch(uint32_t sensor_id) const {
  auto snap = Snapshot(sensor_id);
  return snap == nullptr ? 0 : snap->epoch;
}

size_t QueryService::num_sensors() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  return sensors_.size();
}

QueryServiceCounters QueryService::counters() const {
  QueryServiceCounters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  c.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  c.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
  c.cache_resident = cache_resident_.load(std::memory_order_relaxed);
  c.dataloss = dataloss_.load(std::memory_order_relaxed);
  c.publishes = publishes_.load(std::memory_order_relaxed);
  return c;
}

Status ReplayLog(const ChunkLog& log, uint32_t sensor_id,
                 QueryService* service) {
  for (size_t i = 0; i < log.size(); ++i) {
    switch (log.record_type(i)) {
      case RecordType::kTransmission: {
        auto t = log.Read(i);
        if (!t.ok()) return t.status();
        if (!service->Ingest(sensor_id, *t).ok()) {
          SBR_RETURN_IF_ERROR(service->MarkGap(sensor_id, 1));
          SBR_OBS_COUNT("query.replay_gaps", 1);
        }
        break;
      }
      case RecordType::kGap: {
        auto chunks = log.ReadGap(i);
        if (!chunks.ok()) return chunks.status();
        SBR_RETURN_IF_ERROR(service->MarkGap(sensor_id, *chunks));
        break;
      }
      case RecordType::kSnapshot: {
        auto snap = log.ReadSnapshot(i);
        if (!snap.ok()) return snap.status();
        SBR_RETURN_IF_ERROR(service->ApplySnapshot(sensor_id, *snap));
        break;
      }
      case RecordType::kCheckpoint:
        break;  // recovery state for the log's owner; no history data
    }
  }
  return Status::Ok();
}

}  // namespace sbr::storage
