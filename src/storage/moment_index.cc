#include "storage/moment_index.h"

#include <bit>
#include <cassert>

namespace sbr::storage {

void MomentIndex::Append(const MomentSummary& leaf) {
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(leaf);
  const size_t n = levels_[0].size();
  // Completing leaf n - 1 completes the aligned 2^k group ending at n for
  // every k dividing n: fold the two level k-1 halves that form it.
  for (size_t k = 1; (n & ((size_t{1} << k) - 1)) == 0; ++k) {
    if (levels_.size() <= k) levels_.emplace_back();
    const size_t node = (n >> k) - 1;
    MomentSummary merged = levels_[k - 1][2 * node];
    merged.Merge(levels_[k - 1][2 * node + 1]);
    levels_[k].push_back(merged);
  }
}

MomentSummary MomentIndex::Query(size_t lo, size_t hi) const {
  assert(hi <= size() && lo <= hi);
  MomentSummary out;
  while (lo < hi) {
    // Largest aligned power-of-two group starting at lo that fits in the
    // remaining range; both caps keep every referenced node complete.
    size_t k = lo == 0 ? static_cast<size_t>(std::bit_width(hi - lo)) - 1
                       : static_cast<size_t>(std::countr_zero(lo));
    const size_t span_k = static_cast<size_t>(std::bit_width(hi - lo)) - 1;
    k = std::min(k, span_k);
    out.Merge(levels_[k][lo >> k]);
    lo += size_t{1} << k;
  }
  return out;
}

size_t MomentIndex::FirstGap(size_t lo, size_t hi) const {
  assert(hi <= size() && lo <= hi);
  while (lo < hi) {
    size_t k = lo == 0 ? static_cast<size_t>(std::bit_width(hi - lo)) - 1
                       : static_cast<size_t>(std::countr_zero(lo));
    const size_t span_k = static_cast<size_t>(std::bit_width(hi - lo)) - 1;
    k = std::min(k, span_k);
    if (levels_[k][lo >> k].has_gap) return DescendToGap(k, lo >> k);
    lo += size_t{1} << k;
  }
  return hi;
}

size_t MomentIndex::DescendToGap(size_t level, size_t i) const {
  while (level > 0) {
    // A gap node always has a gap child; prefer the left one (lowest
    // chunk index, matching the legacy ascending scan's first failure).
    if (levels_[level - 1][2 * i].has_gap) {
      i = 2 * i;
    } else {
      assert(levels_[level - 1][2 * i + 1].has_gap);
      i = 2 * i + 1;
    }
    --level;
  }
  return i;
}

}  // namespace sbr::storage
