// Hierarchical moment index: O(log n) compressed-domain aggregates over a
// chunk timeline.
//
// Each leaf is the exact `MomentSummary` {count, sum, sumsq, min, max,
// has_gap} of one (chunk, signal), folded at ingest with the query
// engine's own per-interval arithmetic. Above the leaves sits an implicit
// forest of power-of-two summary nodes: level k node i summarizes the
// aligned chunk group [i * 2^k, (i + 1) * 2^k) and is materialized the
// moment its last leaf arrives, so the whole structure is append-only —
// a node, once written, is never touched again.
//
// An aggregate over chunk range [lo, hi) decomposes into at most
// 2 * log2(n) aligned nodes (the standard sparse-segment decomposition),
// every one of which exists because complete ranges only reference
// complete groups. Gap chunks (protocol DataLoss) contribute `has_gap`
// leaves; the flag ORs upward, so a wide range touching a lost chunk
// fails in O(log n) too, and `FirstGap` descends the same nodes to name
// the offending chunk without a linear walk.
//
// Storage is copy-on-write friendly by construction: nodes live in sealed
// power-of-two blocks shared by `shared_ptr`, plus one small mutable tail
// block per level. Copying an index — the QueryService epoch-publish
// path — costs O(blocks) pointer bumps and one partial block per level,
// never O(chunks) summaries, so publishes stay cheap and readers share
// every sealed block with the writer without synchronization (sealed
// blocks are immutable).
#ifndef SBR_STORAGE_MOMENT_INDEX_H_
#define SBR_STORAGE_MOMENT_INDEX_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

namespace sbr::storage {

/// Exact moments of one chunk range of one signal, combinable in O(1).
struct MomentSummary {
  double sum = 0.0;
  double sumsq = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  size_t count = 0;
  /// True if any covered chunk is a declared loss gap.
  bool has_gap = false;

  /// Folds `other` into this summary (order: this, then other — matching
  /// an ascending-chunk walk).
  void Merge(const MomentSummary& other) {
    sum += other.sum;
    sumsq += other.sumsq;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    count += other.count;
    has_gap = has_gap || other.has_gap;
  }

  /// The summary of a lost chunk: no samples, only the gap flag.
  static MomentSummary Gap() {
    MomentSummary s;
    s.has_gap = true;
    return s;
  }
};

namespace detail {

/// Append-only vector of T in sealed power-of-two blocks shared by
/// shared_ptr plus one small mutable tail. Copies cost O(blocks) pointer
/// bumps + the tail; sealed blocks are immutable and safely shared across
/// threads (the COW property the epoch-publish path relies on).
template <typename T, size_t kBlockSize = 64>
class CowBlockVector {
  static_assert((kBlockSize & (kBlockSize - 1)) == 0,
                "block size must be a power of two");

 public:
  size_t size() const { return sealed_.size() * kBlockSize + tail_.size(); }
  bool empty() const { return sealed_.empty() && tail_.empty(); }
  size_t num_sealed_blocks() const { return sealed_.size(); }

  void push_back(const T& value) {
    tail_.push_back(value);
    if (tail_.size() == kBlockSize) {
      auto block = std::make_shared<std::array<T, kBlockSize>>();
      std::copy(tail_.begin(), tail_.end(), block->begin());
      sealed_.push_back(std::move(block));
      tail_.clear();
    }
  }

  const T& operator[](size_t i) const {
    const size_t block = i / kBlockSize;
    return block < sealed_.size() ? (*sealed_[block])[i % kBlockSize]
                                  : tail_[i - sealed_.size() * kBlockSize];
  }

 private:
  std::vector<std::shared_ptr<const std::array<T, kBlockSize>>> sealed_;
  std::vector<T> tail_;  // < kBlockSize elements, copied by value
};

}  // namespace detail

/// Append-only hierarchical index over one signal's per-chunk summaries.
class MomentIndex {
 public:
  /// Leaves appended so far (== chunks on the timeline).
  size_t size() const {
    return levels_.empty() ? 0 : levels_[0].size();
  }

  /// Appends the next chunk's summary and materializes every power-of-two
  /// group it completes (amortized O(1) merges per append).
  void Append(const MomentSummary& leaf);

  /// Fold of chunk range [lo, hi), half-open, hi <= size(). Touches at
  /// most 2 * log2(size()) nodes. An empty range returns the identity.
  MomentSummary Query(size_t lo, size_t hi) const;

  /// Lowest chunk index in [lo, hi) whose leaf has_gap, or `hi` if none.
  /// Same node decomposition as Query plus one root-to-leaf descent.
  size_t FirstGap(size_t lo, size_t hi) const;

 private:
  /// Descends from node (level, i) to its leftmost gap leaf.
  size_t DescendToGap(size_t level, size_t i) const;

  /// levels_[k][i] summarizes chunks [i * 2^k, (i + 1) * 2^k).
  std::vector<detail::CowBlockVector<MomentSummary>> levels_;
};

}  // namespace sbr::storage

#endif  // SBR_STORAGE_MOMENT_INDEX_H_
