#include "storage/query_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/fixed_base.h"

namespace sbr::storage {
namespace {

// Sum of t and t^2 for t in [lo, hi) — closed forms for the
// linear-in-time fall-back intervals.
double SumT(size_t lo, size_t hi) {
  const double a = static_cast<double>(lo);
  const double b = static_cast<double>(hi);
  return (b * (b - 1.0) - a * (a - 1.0)) / 2.0;
}
double SumT2(size_t lo, size_t hi) {
  auto cube = [](double m) { return (m - 1.0) * m * (2.0 * m - 1.0) / 6.0; };
  return cube(static_cast<double>(hi)) - cube(static_cast<double>(lo));
}

}  // namespace

std::shared_ptr<const CompressedHistory::BaseVersion>
CompressedHistory::BuildVersion(std::vector<double> values) const {
  auto version = std::make_shared<BaseVersion>();
  version->values = std::move(values);
  version->sums.Reset(version->values);
  // The min/max sparse table only pays for itself on the indexed path;
  // the legacy reference scans the base segment like it always did.
  if (index_options_.enabled) version->minmax.Reset(version->values);
  return version;
}

void CompressedHistory::PublishBaseVersion() {
  current_base_ = BuildVersion(
      {mirror_.values().begin(), mirror_.values().end()});
  ++num_base_versions_;
}

void CompressedHistory::AppendIndexLeaves(const ChunkRep* chunk) {
  if (!index_options_.enabled || num_signals_ == 0) return;
  if (index_.empty()) {
    index_.assign(num_signals_, MomentIndex{});
    // Every chunk on the timeline before the first successful ingest is
    // a loss gap (geometry was unknown); backfill their leaves so index
    // positions equal chunk indices.
    for (size_t c = 0; c + 1 < chunks_.size(); ++c) {
      for (MomentIndex& idx : index_) idx.Append(MomentSummary::Gap());
    }
  }
  for (size_t s = 0; s < num_signals_; ++s) {
    MomentSummary leaf;
    if (chunk == nullptr) {
      leaf = MomentSummary::Gap();
    } else {
      FoldRowRange(*chunk, s * chunk_len_, (s + 1) * chunk_len_, &leaf);
    }
    index_[s].Append(leaf);
  }
}

Status CompressedHistory::Ingest(const core::Transmission& t) {
  if (!t.signal_lengths.empty()) {
    return Status::Unimplemented(
        "multi-rate chunks are not indexable by the query engine");
  }
  if (t.num_signals == 0 || t.chunk_len == 0 || t.w == 0) {
    return Status::DataLoss("zero geometry");
  }
  if (num_signals_ == 0) {
    num_signals_ = t.num_signals;
    chunk_len_ = t.chunk_len;
  } else if (t.num_signals != num_signals_ || t.chunk_len != chunk_len_) {
    return Status::FailedPrecondition("transmission geometry changed");
  }

  // A self-contained (degraded-mode) chunk references no base signal:
  // like the decoder, it neither initializes nor constrains the stream's
  // base state and may appear at any point of any stream.
  const bool self_contained = t.base_kind == core::BaseKind::kNone;
  if (!self_contained) {
    if (w_ == 0) {
      w_ = t.w;
      base_kind_ = t.base_kind;
      if (base_kind_ == core::BaseKind::kStored) {
        if (m_base_ < w_) {
          return Status::InvalidArgument("m_base smaller than W");
        }
        mirror_ = core::BaseSignal(w_, m_base_);
      } else if (base_kind_ == core::BaseKind::kDctFixed) {
        mirror_ = core::BaseSignal();
        current_base_ = BuildVersion(core::MakeDctFixedBase(w_));
        ++num_base_versions_;
      }
    } else if (t.w != w_ || t.base_kind != base_kind_) {
      return Status::DataLoss("transmission base geometry changed mid-stream");
    }
    if (base_kind_ == core::BaseKind::kStored &&
        (!t.base_updates.empty() || current_base_ == nullptr)) {
      for (const core::BaseUpdate& bu : t.base_updates) {
        SBR_RETURN_IF_ERROR(mirror_.Overwrite(bu.slot, bu.values));
      }
      PublishBaseVersion();
    }
  } else if (!t.base_updates.empty()) {
    return Status::DataLoss("base updates present without a stored base");
  }

  // Resolve interval records into concrete intervals.
  std::vector<core::IntervalRecord> recs = t.intervals;
  std::sort(recs.begin(), recs.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  const size_t total_len = static_cast<size_t>(num_signals_) * chunk_len_;
  if (recs.empty() || recs[0].start != 0) {
    return Status::DataLoss("interval records do not start at 0");
  }
  ChunkRep rep;
  // A self-contained chunk gets no base: any interval still claiming a
  // base reference is corrupt, not silently resolved against unrelated
  // state (base_len 0 rejects every non-fallback shift below).
  rep.base = self_contained ? nullptr : current_base_;
  rep.intervals.reserve(recs.size());
  const size_t base_len = rep.base ? rep.base->values.size() : 0;
  for (size_t i = 0; i < recs.size(); ++i) {
    const size_t end = i + 1 < recs.size() ? recs[i + 1].start : total_len;
    if (end <= recs[i].start) {
      return Status::DataLoss("interval records overlap or are empty");
    }
    core::Interval iv;
    iv.start = recs[i].start;
    iv.length = end - recs[i].start;
    iv.shift = recs[i].shift;
    iv.a = recs[i].a;
    iv.b = recs[i].b;
    iv.c = recs[i].c;
    if (iv.shift != core::kShiftLinearFallback &&
        (iv.shift < 0 ||
         static_cast<size_t>(iv.shift) + iv.length > base_len)) {
      return Status::DataLoss("interval shift outside the base signal");
    }
    rep.intervals.push_back(iv);
  }
  chunks_.push_back(std::make_shared<const ChunkRep>(std::move(rep)));
  AppendIndexLeaves(chunks_.back().get());
  return Status::Ok();
}

void CompressedHistory::MarkGap(size_t chunks) {
  for (size_t i = 0; i < chunks; ++i) {
    chunks_.emplace_back(nullptr);
    // Index structures exist only once geometry is known; earlier gaps
    // are backfilled by the first AppendIndexLeaves.
    if (index_options_.enabled && !index_.empty()) {
      AppendIndexLeaves(nullptr);
    }
  }
  num_gaps_ += chunks;
}

Status CompressedHistory::ApplySnapshot(const core::BaseSnapshot& snapshot) {
  if (snapshot.w == 0) {
    // The sensor had not warmed up yet (no base signal); nothing to mirror.
    return Status::Ok();
  }
  if (w_ == 0) {
    w_ = snapshot.w;
    base_kind_ = snapshot.base_kind;
    if (base_kind_ == core::BaseKind::kDctFixed) {
      current_base_ = BuildVersion(core::MakeDctFixedBase(w_));
      ++num_base_versions_;
    }
  } else if (snapshot.w != w_) {
    return Status::DataLoss("snapshot W does not match the stream");
  } else if (snapshot.base_kind != base_kind_) {
    return Status::DataLoss("snapshot base kind does not match the stream");
  }
  if (base_kind_ != core::BaseKind::kStored) {
    if (!snapshot.slots.empty()) {
      return Status::DataLoss("snapshot slots present without a stored base");
    }
    return Status::Ok();
  }
  if (m_base_ < w_) {
    return Status::InvalidArgument("m_base smaller than W");
  }
  core::BaseSignal rebuilt(w_, m_base_);
  for (const core::BaseUpdate& s : snapshot.slots) {
    SBR_RETURN_IF_ERROR(rebuilt.Overwrite(s.slot, s.values));
  }
  mirror_ = std::move(rebuilt);
  PublishBaseVersion();
  return Status::Ok();
}

void CompressedHistory::AccumulateInterval(const ChunkRep& chunk,
                                           const core::Interval& iv,
                                           size_t lo, size_t hi,
                                           MomentSummary* out) const {
  const size_t len = hi - lo;
  if (len == 0) return;
  out->count += len;

  const bool fallback = iv.shift == core::kShiftLinearFallback;
  const bool needs_scan = iv.c != 0.0;

  if (!needs_scan && fallback) {
    // y' = a t + b over t in [lo, hi): closed forms.
    const double st = SumT(lo, hi);
    const double st2 = SumT2(lo, hi);
    const double flen = static_cast<double>(len);
    out->sum += iv.a * st + iv.b * flen;
    out->sumsq += iv.a * iv.a * st2 + 2.0 * iv.a * iv.b * st +
                  iv.b * iv.b * flen;
    // Monotone in t: extremes at the ends.
    const double v0 = iv.a * static_cast<double>(lo) + iv.b;
    const double v1 = iv.a * static_cast<double>(hi - 1) + iv.b;
    out->min = std::min({out->min, v0, v1});
    out->max = std::max({out->max, v0, v1});
    return;
  }

  if (!needs_scan) {
    // Base-mapped linear interval: prefix sums over the base snapshot.
    const size_t xs = static_cast<size_t>(iv.shift) + lo;
    const PrefixSums& ps = chunk.base->sums;
    const double sx = ps.RangeSum(xs, len);
    const double sx2 = ps.RangeSumSquares(xs, len);
    const double flen = static_cast<double>(len);
    out->sum += iv.a * sx + iv.b * flen;
    out->sumsq += iv.a * iv.a * sx2 + 2.0 * iv.a * iv.b * sx +
                  iv.b * iv.b * flen;
    // Min/max require the base extremes over the segment: O(1) from the
    // version's sparse table when indexing is on, a short scan (at most
    // ~2W values) on the legacy path. Both produce the identical
    // extremes — min/max are order-insensitive — so the toggle never
    // changes an answer, only its cost.
    double mn;
    double mx;
    if (!chunk.base->minmax.empty()) {
      mn = chunk.base->minmax.Min(xs, len);
      mx = chunk.base->minmax.Max(xs, len);
    } else {
      const auto& x = chunk.base->values;
      mn = std::numeric_limits<double>::infinity();
      mx = -mn;
      for (size_t i = 0; i < len; ++i) {
        mn = std::min(mn, x[xs + i]);
        mx = std::max(mx, x[xs + i]);
      }
    }
    const double v0 = iv.a * mn + iv.b;
    const double v1 = iv.a * mx + iv.b;
    out->min = std::min({out->min, v0, v1});
    out->max = std::max({out->max, v0, v1});
    return;
  }

  // Quadratic encodings: direct scan (sum of x^3/x^4 moments is not
  // worth the bookkeeping for this rare mode).
  for (size_t i = lo; i < hi; ++i) {
    double v;
    if (fallback) {
      const double tt = static_cast<double>(i);
      v = iv.a * tt + iv.b + iv.c * tt * tt;
    } else {
      const double xv =
          chunk.base->values[static_cast<size_t>(iv.shift) + i];
      v = iv.a * xv + iv.b + iv.c * xv * xv;
    }
    out->sum += v;
    out->sumsq += v * v;
    out->min = std::min(out->min, v);
    out->max = std::max(out->max, v);
  }
}

void CompressedHistory::FoldRowRange(const ChunkRep& chunk, size_t row_lo,
                                     size_t row_hi,
                                     MomentSummary* out) const {
  // First interval containing row_lo (intervals tile the chunk).
  auto it = std::upper_bound(
      chunk.intervals.begin(), chunk.intervals.end(), row_lo,
      [](size_t pos, const core::Interval& iv) { return pos < iv.start; });
  --it;
  for (; it != chunk.intervals.end() && it->start < row_hi; ++it) {
    const size_t lo = std::max<size_t>(row_lo, it->start) - it->start;
    const size_t hi =
        std::min<size_t>(row_hi, it->start + it->length) - it->start;
    AccumulateInterval(chunk, *it, lo, hi, out);
  }
}

StatusOr<AggregateResult> CompressedHistory::Aggregate(size_t signal,
                                                       size_t t0,
                                                       size_t t1) const {
  if (signal >= num_signals_) {
    return Status::OutOfRange("signal " + std::to_string(signal));
  }
  if (t0 >= t1 || t1 > history_len()) {
    return Status::OutOfRange("range [" + std::to_string(t0) + ", " +
                              std::to_string(t1) + ")");
  }
  MomentSummary acc;

  const size_t c_first = t0 / chunk_len_;
  const size_t c_last = (t1 - 1) / chunk_len_;
  // Chunks fully covered by [t0, t1), as the half-open range
  // [full_lo, full_hi): these are answerable from leaf summaries alone.
  const size_t full_lo = t0 % chunk_len_ == 0 ? c_first : c_first + 1;
  const size_t full_hi = t1 % chunk_len_ == 0 ? c_last + 1 : c_last;

  if (index_options_.enabled && !index_.empty() && full_lo < full_hi) {
    // Indexed path: walk intervals only inside the two partial boundary
    // chunks; every fully covered chunk comes from O(log n) pre-merged
    // summary nodes. Gap detection keeps the legacy ascending order: the
    // leading boundary first, then the lowest interior gap, then the
    // trailing boundary.
    if (full_lo > c_first) {
      if (chunks_[c_first] == nullptr) {
        return Status::DataLoss("range touches lost chunk " +
                                std::to_string(c_first));
      }
      const size_t lo_t = t0 - c_first * chunk_len_;
      FoldRowRange(*chunks_[c_first], signal * chunk_len_ + lo_t,
                   (signal + 1) * chunk_len_, &acc);
    }
    const MomentSummary interior = index_[signal].Query(full_lo, full_hi);
    if (interior.has_gap) {
      return Status::DataLoss(
          "range touches lost chunk " +
          std::to_string(index_[signal].FirstGap(full_lo, full_hi)));
    }
    acc.Merge(interior);
    if (full_hi <= c_last) {
      if (chunks_[c_last] == nullptr) {
        return Status::DataLoss("range touches lost chunk " +
                                std::to_string(c_last));
      }
      const size_t hi_t = t1 - c_last * chunk_len_;
      FoldRowRange(*chunks_[c_last], signal * chunk_len_,
                   signal * chunk_len_ + hi_t, &acc);
    }
  } else {
    // Legacy scan: every chunk with at least one sample inside [t0, t1)
    // is walked interval by interval — the differential reference. A
    // range that merely abuts a gap succeeds, one with a sample inside a
    // lost chunk reports DataLoss.
    for (size_t c = c_first; c <= c_last; ++c) {
      if (chunks_[c] == nullptr) {
        return Status::DataLoss("range touches lost chunk " +
                                std::to_string(c));
      }
      const size_t chunk_t0 = c * chunk_len_;
      const size_t lo_t = std::max(t0, chunk_t0) - chunk_t0;
      const size_t hi_t = std::min(t1, chunk_t0 + chunk_len_) - chunk_t0;
      FoldRowRange(*chunks_[c], signal * chunk_len_ + lo_t,
                   signal * chunk_len_ + hi_t, &acc);
    }
  }

  AggregateResult out;
  out.sum = acc.sum;
  out.min = acc.min;
  out.max = acc.max;
  out.count = acc.count;
  const double n = static_cast<double>(acc.count);
  out.avg = acc.sum / n;
  out.variance = std::max(0.0, acc.sumsq / n - out.avg * out.avg);
  return out;
}

StatusOr<double> CompressedHistory::Value(size_t signal, size_t t) const {
  auto agg = Aggregate(signal, t, t + 1);
  if (!agg.ok()) return agg.status();
  return agg->sum;
}

}  // namespace sbr::storage
