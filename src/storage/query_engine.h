// Compressed-domain query engine: answers aggregate range queries over a
// sensor's history directly from the SBR representation, without ever
// materializing the reconstructed series.
//
// Because every interval is an affine image of a base segment
// (y' = a x + b, or a line/parabola over time), range aggregates reduce to
// prefix sums over the base-signal snapshot in force at that chunk:
//    SUM  = a * sum(X[range]) + b * len                     O(1)/interval
//    SUM2 = a^2 sum(X^2) + 2ab sum(X) + b^2 len             O(1)/interval
// so SUM / AVG / VARIANCE cost O(intervals touched), independent of the
// number of samples covered. MIN / MAX scan the base segment (at most W
// values per interval in practice).
//
// Memory: one interval list per chunk plus one base-signal *snapshot
// version* per change, far below retaining the decoded series.
#ifndef SBR_STORAGE_QUERY_ENGINE_H_
#define SBR_STORAGE_QUERY_ENGINE_H_

#include <memory>
#include <vector>

#include "core/base_signal.h"
#include "core/interval.h"
#include "core/transmission.h"
#include "util/prefix_sums.h"
#include "util/status.h"

namespace sbr::storage {

/// Aggregate kinds answered in the compressed domain.
struct AggregateResult {
  double sum = 0.0;
  double avg = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Population variance of the *approximate* series over the range.
  double variance = 0.0;
  size_t count = 0;
};

/// Per-sensor compressed history with aggregate queries. Mirrors the
/// HistoryStore timeline chunk for chunk: transmissions become interval
/// lists, protocol losses become explicit gaps (MarkGap) and resync
/// snapshots re-anchor the base-signal mirror (ApplySnapshot), so the two
/// stores agree on chunk indices even across faults.
class CompressedHistory {
 public:
  /// `m_base` must match the encoder's configuration.
  explicit CompressedHistory(size_t m_base) : m_base_(m_base) {}

  /// Ingests the next transmission (in order). Uniform-rate chunks only.
  Status Ingest(const core::Transmission& t);

  /// Records `chunks` lost chunks: the timeline advances but the interval
  /// lists are gone; aggregates touching them report DataLoss.
  void MarkGap(size_t chunks = 1);

  /// Re-establishes the base-signal mirror from a resync snapshot (the
  /// compressed-domain analogue of SbrDecoder::ApplySnapshot).
  Status ApplySnapshot(const core::BaseSnapshot& snapshot);

  size_t num_chunks() const { return chunks_.size(); }
  /// Chunks recorded as lost.
  size_t num_gaps() const { return num_gaps_; }
  /// True if chunk `c` is a loss gap.
  bool IsGap(size_t c) const { return chunks_[c] == nullptr; }
  size_t num_signals() const { return num_signals_; }
  size_t chunk_len() const { return chunk_len_; }
  size_t history_len() const { return chunks_.size() * chunk_len_; }

  /// Aggregates of `signal` over global sample range [t0, t1). A range
  /// with a sample inside a lost chunk returns DataLoss; a range that
  /// merely abuts a gap succeeds.
  StatusOr<AggregateResult> Aggregate(size_t signal, size_t t0,
                                      size_t t1) const;

  /// Point lookup (reconstructs a single sample in O(log intervals)).
  StatusOr<double> Value(size_t signal, size_t t) const;

  /// Number of distinct base-signal versions retained.
  size_t num_base_versions() const { return num_base_versions_; }

 private:
  /// An immutable base-signal snapshot with prefix sums for O(1) range
  /// aggregates. Shared by every chunk encoded against it.
  struct BaseVersion {
    std::vector<double> values;
    PrefixSums sums;
  };

  /// Immutable once ingested; shared between copies of the history (the
  /// QueryService snapshot publish path), so copying a CompressedHistory
  /// costs O(chunks) pointer copies. A nullptr entry marks a loss gap.
  struct ChunkRep {
    /// Intervals sorted by start, lengths resolved.
    std::vector<core::Interval> intervals;
    std::shared_ptr<const BaseVersion> base;
  };

  // Accumulates the aggregate of one interval restricted to
  // [lo, hi) (positions relative to the interval's start).
  void AccumulateInterval(const ChunkRep& chunk, const core::Interval& iv,
                          size_t lo, size_t hi, AggregateResult* out) const;

  /// Publishes the mirror's current contents as a new immutable
  /// BaseVersion (called whenever the mirror changed).
  void PublishBaseVersion();

  size_t m_base_ = 0;
  size_t w_ = 0;
  core::BaseKind base_kind_ = core::BaseKind::kStored;
  size_t num_signals_ = 0;
  size_t chunk_len_ = 0;
  size_t num_gaps_ = 0;
  core::BaseSignal mirror_;  // evolving decoder-side buffer
  std::shared_ptr<const BaseVersion> current_base_;
  size_t num_base_versions_ = 0;
  std::vector<std::shared_ptr<const ChunkRep>> chunks_;
};

}  // namespace sbr::storage

#endif  // SBR_STORAGE_QUERY_ENGINE_H_
