// Compressed-domain query engine: answers aggregate range queries over a
// sensor's history directly from the SBR representation, without ever
// materializing the reconstructed series.
//
// Because every interval is an affine image of a base segment
// (y' = a x + b, or a line/parabola over time), range aggregates reduce to
// prefix sums over the base-signal snapshot in force at that chunk:
//    SUM  = a * sum(X[range]) + b * len                     O(1)/interval
//    SUM2 = a^2 sum(X^2) + 2ab sum(X) + b^2 len             O(1)/interval
// and MIN / MAX to an O(1) sparse-table lookup over the same snapshot.
//
// On top of the per-interval algebra sits the hierarchical moment index
// (storage/moment_index.h): at ingest every (chunk, signal) is folded
// into an exact MomentSummary, and aligned power-of-two groups of chunks
// are pre-merged append-only. A range aggregate then walks intervals only
// inside its two partial boundary chunks and answers every fully covered
// chunk from O(log #chunks) node combines — O(log n) instead of
// O(samples-in-range), including the DataLoss check (gap flags OR up the
// index). IndexOptions{enabled = false} keeps the legacy full interval
// scan alive as the differential reference path.
//
// Memory: one interval list per chunk, one base-signal *snapshot version*
// per change (prefix sums + min/max sparse table), and < 2 summary nodes
// per (chunk, signal) — far below retaining the decoded series.
#ifndef SBR_STORAGE_QUERY_ENGINE_H_
#define SBR_STORAGE_QUERY_ENGINE_H_

#include <memory>
#include <vector>

#include "core/base_signal.h"
#include "core/interval.h"
#include "core/transmission.h"
#include "storage/moment_index.h"
#include "util/prefix_sums.h"
#include "util/range_min_max.h"
#include "util/status.h"

namespace sbr::storage {

/// Aggregate kinds answered in the compressed domain.
struct AggregateResult {
  double sum = 0.0;
  double avg = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Population variance of the *approximate* series over the range.
  double variance = 0.0;
  size_t count = 0;
};

/// Query-acceleration switches shared by CompressedHistory and the
/// QueryService that owns one per sensor.
struct IndexOptions {
  /// Hierarchical moment index + per-base-version min/max sparse table.
  /// Disabled = the legacy O(range) interval scan, kept alive as the
  /// differential reference for the index-vs-scan oracle.
  bool enabled = true;
};

/// Per-sensor compressed history with aggregate queries. Mirrors the
/// HistoryStore timeline chunk for chunk: transmissions become interval
/// lists, protocol losses become explicit gaps (MarkGap) and resync
/// snapshots re-anchor the base-signal mirror (ApplySnapshot), so the two
/// stores agree on chunk indices even across faults.
class CompressedHistory {
 public:
  /// `m_base` must match the encoder's configuration.
  explicit CompressedHistory(size_t m_base,
                             IndexOptions index = IndexOptions{})
      : m_base_(m_base), index_options_(index) {}

  /// Ingests the next transmission (in order). Uniform-rate chunks only.
  Status Ingest(const core::Transmission& t);

  /// Records `chunks` lost chunks: the timeline advances but the interval
  /// lists are gone; aggregates touching them report DataLoss.
  void MarkGap(size_t chunks = 1);

  /// Re-establishes the base-signal mirror from a resync snapshot (the
  /// compressed-domain analogue of SbrDecoder::ApplySnapshot).
  Status ApplySnapshot(const core::BaseSnapshot& snapshot);

  size_t num_chunks() const { return chunks_.size(); }
  /// Chunks recorded as lost.
  size_t num_gaps() const { return num_gaps_; }
  /// True if chunk `c` is a loss gap.
  bool IsGap(size_t c) const { return chunks_[c] == nullptr; }
  size_t num_signals() const { return num_signals_; }
  size_t chunk_len() const { return chunk_len_; }
  size_t history_len() const { return chunks_.size() * chunk_len_; }

  /// Aggregates of `signal` over global sample range [t0, t1). A range
  /// with a sample inside a lost chunk returns DataLoss; a range that
  /// merely abuts a gap succeeds. With the index enabled the cost is
  /// O(log #chunks + intervals in the two boundary chunks).
  StatusOr<AggregateResult> Aggregate(size_t signal, size_t t0,
                                      size_t t1) const;

  /// Point lookup (reconstructs a single sample in O(log intervals)).
  StatusOr<double> Value(size_t signal, size_t t) const;

  /// Number of distinct base-signal versions retained.
  size_t num_base_versions() const { return num_base_versions_; }

  /// True when the hierarchical moment index serves this history.
  bool index_enabled() const { return index_options_.enabled; }

 private:
  /// An immutable base-signal snapshot with prefix sums for O(1) range
  /// sums and (when indexing is on) a sparse table for O(1) range
  /// min/max. Shared by every chunk encoded against it.
  struct BaseVersion {
    std::vector<double> values;
    PrefixSums sums;
    /// Empty when the index is disabled (legacy scan path).
    RangeMinMax minmax;
  };

  /// Immutable once ingested; shared between copies of the history (the
  /// QueryService snapshot publish path), so copying a CompressedHistory
  /// costs O(chunks) pointer copies. A nullptr entry marks a loss gap.
  struct ChunkRep {
    /// Intervals sorted by start, lengths resolved.
    std::vector<core::Interval> intervals;
    std::shared_ptr<const BaseVersion> base;
  };

  // Accumulates the exact moments of one interval restricted to
  // [lo, hi) (positions relative to the interval's start).
  void AccumulateInterval(const ChunkRep& chunk, const core::Interval& iv,
                          size_t lo, size_t hi, MomentSummary* out) const;

  /// Folds the chunk's intervals overlapping row range [row_lo, row_hi)
  /// (chunk-local concatenated coordinates) into `out`.
  void FoldRowRange(const ChunkRep& chunk, size_t row_lo, size_t row_hi,
                    MomentSummary* out) const;

  /// Appends chunk `c`'s per-signal leaf summaries to the moment index
  /// (creating + gap-backfilling the per-signal structures on first use).
  void AppendIndexLeaves(const ChunkRep* chunk);

  /// Publishes the mirror's current contents as a new immutable
  /// BaseVersion (called whenever the mirror changed).
  void PublishBaseVersion();
  /// Builds a BaseVersion (prefix sums + optional min/max table) from
  /// `values`.
  std::shared_ptr<const BaseVersion> BuildVersion(
      std::vector<double> values) const;

  size_t m_base_ = 0;
  IndexOptions index_options_;
  size_t w_ = 0;
  core::BaseKind base_kind_ = core::BaseKind::kStored;
  size_t num_signals_ = 0;
  size_t chunk_len_ = 0;
  size_t num_gaps_ = 0;
  core::BaseSignal mirror_;  // evolving decoder-side buffer
  std::shared_ptr<const BaseVersion> current_base_;
  size_t num_base_versions_ = 0;
  std::vector<std::shared_ptr<const ChunkRep>> chunks_;
  /// One hierarchical index per signal (empty until the first ingest
  /// fixes the geometry; gap chunks before that are backfilled). Sealed
  /// blocks are shared across history copies.
  std::vector<MomentIndex> index_;
};

}  // namespace sbr::storage

#endif  // SBR_STORAGE_QUERY_ENGINE_H_
